//===- service/WireProtocol.h - tnumsd framing and codec --------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The length-prefixed binary protocol the verification daemon (tnumsd,
/// service/Daemon.h) speaks over its UNIX/TCP sockets. Full spec in
/// docs/SERVICE.md; the shape:
///
///   frame := header payload
///   header (20 bytes, little-endian):
///     u32 magic       0x544E5531 ("TNU1")
///     u8  version     1
///     u8  type        MsgType
///     u16 reserved    must be 0
///     u64 request id  client-chosen token, echoed on every reply
///     u32 payload len bounded by MaxPayloadBytes
///
/// Every multi-byte field is little-endian and encoded/decoded field-wise
/// (never memcpy of structs), so the wire format is identical across
/// platforms and struct padding can neither leak nor desynchronize.
///
/// Robustness contract (locked by tests/WireProtocolTest.cpp): decoders
/// never read past the supplied buffer, reject every truncated, oversized,
/// out-of-range, or trailing-garbage input with an error (latched, not
/// thrown), and a FrameDecoder fed arbitrary bytes either produces valid
/// frames or reports a protocol error -- it cannot crash, hang, or yield a
/// partial frame. The daemon answers a protocol error with MsgType::Error
/// and closes the connection.
///
/// The Submit payload embeds the *canonical request encoding*
/// (encodeRequestCanonical): exactly the verdict-relevant fields of a
/// VerifyRequest. The persistent VerdictCache reuses the same bytes as its
/// key material and stored exact-match witness, so "identical request" has
/// one definition protocol-wide.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_SERVICE_WIREPROTOCOL_H
#define TNUMS_SERVICE_WIREPROTOCOL_H

#include "service/VerificationService.h"
#include "support/Metrics.h"

#include <cstdint>
#include <optional>
#include <string>

namespace tnums {
namespace service {

/// \name Protocol constants
/// @{
inline constexpr uint32_t FrameMagic = 0x544E5531; // "TNU1"
/// v1: Hello..ShutdownAck. v2: adds MetricsQuery/MetricsReply, the
/// HelloAck build-info string, and the StatsReply peak gauges (all three
/// changed together, so one version bump covers them).
inline constexpr uint8_t ProtocolVersion = 2;
/// Frames above this payload size are refused outright (backpressure on
/// memory: a hostile length prefix cannot make the daemon allocate).
inline constexpr uint32_t MaxPayloadBytes = 1u << 20;
inline constexpr size_t FrameHeaderBytes = 20;
/// Submit programs above this instruction count are malformed (far above
/// anything the generator or the kernel's 4k insn cap would produce).
inline constexpr uint32_t MaxWireInsns = 1u << 16;
/// Violation lists and strings are bounded the same way.
inline constexpr uint32_t MaxWireViolations = 1u << 12;
inline constexpr uint32_t MaxWireString = 1u << 16;
/// MetricsReply bounds: snapshot entries and per-histogram bucket counts.
inline constexpr uint32_t MaxWireMetrics = 1u << 12;
inline constexpr uint32_t MaxWireBuckets = 128;
/// @}

/// Frame types. Requests flow client -> daemon, replies daemon -> client;
/// every reply echoes the request's id.
enum class MsgType : uint8_t {
  Hello = 1,    ///< Client: tenant name; must be the first frame.
  HelloAck,     ///< Daemon: version fingerprint + limits.
  Submit,       ///< Client: priority + canonical request.
  Verdict,      ///< Daemon: the verdict (+witness on reject).
  Busy,         ///< Daemon: admission refused; retry later.
  Error,        ///< Daemon: protocol error; connection closes after.
  StatsQuery,   ///< Client: empty.
  StatsReply,   ///< Daemon: counter snapshot.
  Shutdown,     ///< Client: stop the daemon.
  ShutdownAck,  ///< Daemon: acknowledged; daemon exits after flush.
  MetricsQuery, ///< Client: empty; asks for the full metrics snapshot.
  MetricsReply, ///< Daemon: build info + every metric (v2).
};

/// True for the types a client may send.
bool isRequestType(MsgType Type);

/// Why an Error frame was sent. u16 on the wire.
enum class WireError : uint16_t {
  None = 0,
  BadMagic,         ///< Header magic mismatch (stream desync).
  BadVersion,       ///< Unsupported protocol version.
  BadType,          ///< Unknown or direction-invalid frame type.
  OversizedFrame,   ///< Payload length above MaxPayloadBytes.
  MalformedPayload, ///< Payload failed to decode.
  HelloRequired,    ///< First frame was not Hello.
  Internal,         ///< Daemon-side failure (cache I/O, ...).
};

/// Stable name for diagnostics ("bad-magic", ...).
const char *wireErrorName(WireError Error);

/// One decoded frame: header fields plus raw payload bytes.
struct Frame {
  MsgType Type = MsgType::Error;
  uint64_t RequestId = 0;
  std::string Payload;
};

/// \name Payload structs
/// @{
struct HelloMsg {
  std::string Tenant; ///< Admission/quota identity; empty -> "anon".
};

struct HelloAckMsg {
  uint64_t VersionFingerprint = 0; ///< analyzerVerdictFingerprint().
  uint32_t MaxPayload = MaxPayloadBytes;
  uint8_t Version = ProtocolVersion;
  std::string BuildInfo; ///< buildInfoJson() of the serving daemon (v2).
};

struct SubmitMsg {
  uint8_t Priority = 0; ///< Higher runs first.
  VerifyRequest Request;
};

struct VerdictMsg {
  bool Accepted = false;
  bool CacheHit = false; ///< Served from the verdict cache, no analysis.
  uint64_t InsnVisits = 0;
  std::string StructuralError;
  std::vector<bpf::Violation> Violations; ///< The witness on reject.
};

struct BusyMsg {
  /// 0 = pool/queue saturated, 1 = per-tenant quota exceeded.
  uint8_t Reason = 0;
  uint64_t PendingDepth = 0; ///< Jobs queued+running at refusal time.
};

struct ErrorMsg {
  WireError Code = WireError::None;
  std::string Message;
};

struct StatsReplyMsg {
  uint64_t Connections = 0;
  uint64_t Submits = 0;
  uint64_t Verdicts = 0;
  uint64_t Analyses = 0; ///< Verdicts computed by running the analyzer.
  uint64_t CacheMemoryHits = 0;
  uint64_t CacheDiskHits = 0;
  uint64_t CacheStores = 0;
  uint64_t CacheStaleInvalidated = 0;
  uint64_t CachePoisonedRejected = 0;
  uint64_t CacheEvictions = 0; ///< Capacity (LRU) evictions.
  uint64_t BusyPool = 0;
  uint64_t BusyQuota = 0;
  uint64_t ProtocolErrors = 0;
  uint64_t PeakInFlight = 0;   ///< High-water mark of running jobs (v2).
  uint64_t PeakQueueDepth = 0; ///< High-water mark of queued jobs (v2).

  uint64_t cacheHits() const { return CacheMemoryHits + CacheDiskHits; }
};

/// The full observability snapshot a MetricsReply carries: the daemon's
/// build identity plus every registered metric, merged across threads
/// (support/Metrics.h MetricValue, reused verbatim so client-side
/// reconstruction is lossless).
struct MetricsReplyMsg {
  std::string BuildInfo; ///< buildInfoJson() of the serving process.
  std::vector<MetricValue> Metrics;
};
/// @}

/// \name Encoders
/// Frame encoders produce a complete wire frame (header + payload);
/// payload encoders produce just the payload bytes.
/// @{
std::string encodeFrame(MsgType Type, uint64_t RequestId,
                        const std::string &Payload);

/// The canonical byte encoding of every verdict-relevant VerifyRequest
/// field (MemSize, analyzer knobs, instructions field-wise). Two requests
/// have equal canonical encodings iff they must produce equal verdicts;
/// the VerdictCache keys and exact-matches on these bytes.
std::string encodeRequestCanonical(const VerifyRequest &Request);

std::string encodeHello(const HelloMsg &Msg);
std::string encodeHelloAck(const HelloAckMsg &Msg);
std::string encodeSubmit(const SubmitMsg &Msg);
std::string encodeVerdict(const VerdictMsg &Msg);
std::string encodeBusy(const BusyMsg &Msg);
std::string encodeError(const ErrorMsg &Msg);
std::string encodeStatsReply(const StatsReplyMsg &Msg);
std::string encodeMetricsReply(const MetricsReplyMsg &Msg);
/// @}

/// \name Decoders
/// nullopt with \p Error set on any malformed input (truncation, bound
/// violations, out-of-range enums, trailing bytes). Never over-read.
/// @{
std::optional<VerifyRequest> decodeRequestCanonical(const std::string &Bytes,
                                                    std::string &Error);
std::optional<HelloMsg> decodeHello(const std::string &Payload,
                                    std::string &Error);
std::optional<HelloAckMsg> decodeHelloAck(const std::string &Payload,
                                          std::string &Error);
std::optional<SubmitMsg> decodeSubmit(const std::string &Payload,
                                      std::string &Error);
std::optional<VerdictMsg> decodeVerdict(const std::string &Payload,
                                        std::string &Error);
std::optional<BusyMsg> decodeBusy(const std::string &Payload,
                                  std::string &Error);
std::optional<ErrorMsg> decodeError(const std::string &Payload,
                                    std::string &Error);
std::optional<StatsReplyMsg> decodeStatsReply(const std::string &Payload,
                                              std::string &Error);
std::optional<MetricsReplyMsg> decodeMetricsReply(const std::string &Payload,
                                                  std::string &Error);
/// @}

/// Converts a VerdictMsg to the in-process result type (Done = true) and
/// back, so daemon clients can reuse verdictFingerprint() unchanged.
VerifyResult verdictToResult(const VerdictMsg &Msg);
VerdictMsg resultToVerdict(const VerifyResult &Result, bool CacheHit);

/// Incremental frame reassembly over a byte stream. feed() bytes as they
/// arrive; next() pops complete frames. A header violation (bad magic,
/// bad version, unknown type, oversized length) latches Status::Error
/// with a WireError -- the stream is desynchronized and the connection
/// must be dropped after an Error reply.
class FrameDecoder {
public:
  enum class Status : uint8_t {
    NeedMore, ///< No complete frame buffered yet.
    Ready,    ///< One frame popped into the out-param.
    Corrupt,  ///< Stream violated the framing; connection must close.
  };

  /// Appends raw bytes from the socket.
  void feed(const char *Data, size_t Size);

  /// Pops the next complete frame. On Corrupt, \p Error names the
  /// violation (and further calls keep returning Corrupt).
  Status next(Frame &Out, WireError &Code, std::string &Error);

  /// Bytes buffered but not yet consumed (for tests).
  size_t bufferedBytes() const { return Buffer.size() - Consumed; }

private:
  std::string Buffer;
  size_t Consumed = 0; ///< Prefix of Buffer already handed out.
  bool Broken = false;
  WireError BrokenCode = WireError::None;
  std::string BrokenError;
};

} // namespace service
} // namespace tnums

#endif // TNUMS_SERVICE_WIREPROTOCOL_H
