//===- service/VerificationService.h - Batched BPF verification -*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analyzer-level scaling layer: a batched verification engine that
/// accepts a queue of Program requests and drives the bpf substrate
/// (validate -> Analyzer fixpoint) across the work-stealing ThreadPool.
/// This is the miniature of the loader service the paper's tnum domain
/// ultimately serves -- a path that must verify many untrusted programs
/// fast -- where PR 1/2's parallel engine scaled the *domain-level*
/// sweeps.
///
/// Work is scheduled as chunks of consecutive request indices; each pool
/// worker owns one long-lived Analyzer whose CFG edge storage and fixpoint
/// scratch are recycled across the programs it processes (per-worker
/// amortization).
///
/// Determinism contract (mirrors verify/ParallelSweep.h):
///
///  * Results[i] always corresponds to Requests[i], and every filled
///    result is bit-identical for every thread count, chunk size, and
///    scheduling order -- each program's verdict is a pure function of its
///    request. By default every request is verified, so whole batches
///    (and verdictFingerprint) are bit-identical and the aggregate stats
///    are exact batch totals.
///  * With StopAtFirstReject, chunks strictly above the lowest rejecting
///    chunk are cancelled best-effort (a fast chunk may finish before the
///    reject is published, so WHICH results end Done = false is
///    scheduling-dependent -- only filled results are deterministic) and
///    the rejecting chunk stops at its own first reject; chunks at or
///    below always finish, so FirstRejected is exactly the serial-order
///    first rejected request. Work stats and verdictFingerprint then
///    reflect the work actually performed, like the sweeps' counters on
///    failure.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_SERVICE_VERIFICATIONSERVICE_H
#define TNUMS_SERVICE_VERIFICATIONSERVICE_H

#include "bpf/Verifier.h"

#include <optional>
#include <string>
#include <vector>

namespace tnums {
namespace service {

/// Tuning knobs for a batch run.
struct ServiceConfig {
  /// Worker threads; 0 means ThreadPool::hardwareConcurrency().
  unsigned NumThreads = 0;

  /// Consecutive request indices per work chunk. Program costs vary a lot
  /// (straight-line vs widening loops), so chunks stay small enough for
  /// the pool to load-balance yet coarse enough that the scheduling atomic
  /// is off the critical path.
  uint64_t ChunkPrograms = 16;

  /// Retain each program's per-instruction fixpoint states in its result
  /// (the differential fuzz oracle needs them; throughput runs leave this
  /// off to avoid copying whole state tables per program).
  bool KeepStates = false;

  /// First-fail mode: cancel everything past the serial-order first
  /// rejected request (the ParallelSweep cancellation protocol). For
  /// loader-style "stop at the first bad program in the bundle" flows.
  bool StopAtFirstReject = false;

  /// Content-hash verdict dedup: requests whose canonicalized program
  /// bytes (and verdict-relevant options) are identical to an earlier
  /// request in the batch are served the first occurrence's verdict
  /// instead of being re-analyzed. A verdict is a pure function of the
  /// request, so full-batch results -- and verdictFingerprint -- are
  /// bit-identical with dedup on or off; only BatchStats::DedupHits and
  /// the wall clock move. (Under StopAtFirstReject, a duplicate is filled
  /// whenever its representative ran, which can fill entries a
  /// non-deduped schedule would have cancelled -- the set of cancelled
  /// entries is best-effort in that mode either way.)
  bool DedupPrograms = true;
};

/// One program to verify against a MemSize-byte context region.
struct VerifyRequest {
  bpf::Program Prog;
  uint64_t MemSize = 32;
  /// Analyzer tuning; the MemSize field is overridden by MemSize above.
  bpf::Analyzer::Options AnalyzerOpts = {};
};

/// One program's verdict. Default-constructed results (Done == false)
/// mark requests cancelled by StopAtFirstReject.
struct VerifyResult {
  bool Done = false;
  bool Accepted = false;
  /// Structural problem, if validation already failed.
  std::string StructuralError;
  /// Semantic complaints from the analyzer.
  std::vector<bpf::Violation> Violations;
  /// Fixpoint states (only with ServiceConfig::KeepStates; empty if
  /// validation failed).
  std::vector<bpf::AbstractState> InStates;
  /// Transfer evaluations the fixpoint performed.
  uint64_t InsnVisits = 0;
};

/// Aggregate throughput accounting for one batch.
struct BatchStats {
  uint64_t Programs = 0;           ///< Requests with a verdict (Done),
                                   ///< including dedup-served duplicates.
  uint64_t Accepted = 0;
  uint64_t RejectedStructural = 0;
  uint64_t RejectedSemantic = 0;
  uint64_t InsnVisits = 0;
  uint64_t DedupHits = 0;          ///< Duplicates served from an earlier
                                   ///< identical request's verdict.
  double Seconds = 0;              ///< Wall clock for the whole batch.

  double programsPerSecond() const {
    return Seconds > 0 ? static_cast<double>(Programs) / Seconds : 0.0;
  }
  double insnVisitsPerSecond() const {
    return Seconds > 0 ? static_cast<double>(InsnVisits) / Seconds : 0.0;
  }

  /// One-line human-readable summary.
  std::string toString() const;
};

/// Everything a batch run produces.
struct BatchResult {
  /// Results[i] is the verdict of Requests[i].
  std::vector<VerifyResult> Results;
  BatchStats Stats;
  /// The serial-order first rejected request, if any verified request was
  /// rejected. Exact in every mode (see the determinism contract).
  std::optional<size_t> FirstRejected;
};

/// Verifies one request into \p Out (validate -> Analyzer fixpoint) with
/// a caller-owned, reused engine -- the per-worker amortization shared by
/// the batch engine and the tnumsd daemon's workers. Sets Out.Done and
/// fills exactly the fields verifyOne() would.
void verifyRequestInto(const VerifyRequest &Request, bool KeepStates,
                       bpf::Analyzer &Engine, VerifyResult &Out);

/// FNV-1a digest of every filled verdict in \p Batch (Done flags,
/// accept/reject, structural errors, violation lists, visit counts) --
/// the cross-jobs/cross-run bit-identity check the tests and the
/// throughput bench both pin. Timing is deliberately excluded. The
/// digest is scheduling-independent for full batches only; under
/// StopAtFirstReject the set of cancelled (Done = false) entries is
/// best-effort, so fingerprints are only comparable with that mode off.
uint64_t verdictFingerprint(const BatchResult &Batch);

/// The batched verification engine. Stateless between batches apart from
/// its configuration; one instance can run any number of batches.
class VerificationService {
public:
  explicit VerificationService(ServiceConfig ConfigV = ServiceConfig())
      : Config(ConfigV) {}

  /// Verifies every request (subject to StopAtFirstReject) and returns
  /// index-aligned results plus aggregate stats.
  BatchResult verifyBatch(const std::vector<VerifyRequest> &Requests) const;

  /// Convenience single-program form (bypasses the pool).
  VerifyResult verifyOne(const VerifyRequest &Request) const;

  const ServiceConfig &config() const { return Config; }

private:
  ServiceConfig Config;
};

} // namespace service
} // namespace tnums

#endif // TNUMS_SERVICE_VERIFICATIONSERVICE_H
