//===- service/VerdictCache.cpp - Persistent cross-run verdict cache ------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "service/VerdictCache.h"

#include "bpf/Analyzer.h"
#include "service/WireProtocol.h"
#include "support/Checkpoint.h"
#include "support/Table.h"
#include "verify/Oracle.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <vector>

#include <unistd.h>

using namespace tnums;
using namespace tnums::service;

namespace fs = std::filesystem;

namespace {

constexpr const char *ManifestName = "verdicts.manifest";
constexpr const char *ManifestMagic = "tnums-verdict-cache v1";
constexpr const char *EntryMagic = "tnums-verdict-entry v1";

std::optional<std::string> readFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return std::nullopt;
  std::string Contents;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) != 0)
    Contents.append(Buf, N);
  std::fclose(File);
  return Contents;
}

std::string takeLine(std::string &Text) {
  size_t Eol = Text.find('\n');
  std::string Line = Text.substr(0, Eol);
  Text.erase(0, Eol == std::string::npos ? Text.size() : Eol + 1);
  return Line;
}

/// Parses "<key> <hex64>" exactly.
std::optional<uint64_t> parseKeyedHex64(const std::string &Line,
                                        const char *Key) {
  size_t KeyLen = std::strlen(Key);
  if (Line.compare(0, KeyLen, Key) != 0 || Line.size() <= KeyLen ||
      Line[KeyLen] != ' ')
    return std::nullopt;
  const char *Text = Line.c_str() + KeyLen + 1;
  char *End = nullptr;
  errno = 0;
  unsigned long long Value = std::strtoull(Text, &End, 16);
  if (errno != 0 || End == Text || *End != '\0')
    return std::nullopt;
  return static_cast<uint64_t>(Value);
}

std::string hexEncode(const std::string &Bytes) {
  static const char Digits[] = "0123456789abcdef";
  std::string Out;
  Out.reserve(Bytes.size() * 2);
  for (unsigned char C : Bytes) {
    Out.push_back(Digits[C >> 4]);
    Out.push_back(Digits[C & 0xF]);
  }
  return Out;
}

std::optional<std::string> hexDecode(const std::string &Text) {
  if (Text.size() % 2 != 0)
    return std::nullopt;
  auto Nibble = [](char C) -> int {
    if (C >= '0' && C <= '9')
      return C - '0';
    if (C >= 'a' && C <= 'f')
      return C - 'a' + 10;
    return -1;
  };
  std::string Out;
  Out.reserve(Text.size() / 2);
  for (size_t I = 0; I != Text.size(); I += 2) {
    int Hi = Nibble(Text[I]), Lo = Nibble(Text[I + 1]);
    if (Hi < 0 || Lo < 0)
      return std::nullopt;
    Out.push_back(static_cast<char>((Hi << 4) | Lo));
  }
  return Out;
}

/// The binary body of one entry: length-prefixed canonical request bytes
/// followed by the wire verdict payload. Reuses the protocol codec so an
/// entry is parseable iff its verdict round-trips the wire format.
std::string encodeEntryBody(const std::string &Canonical,
                            const VerifyResult &Result) {
  std::string Body;
  uint32_t Len = static_cast<uint32_t>(Canonical.size());
  for (unsigned Byte = 0; Byte != 4; ++Byte)
    Body.push_back(static_cast<char>(Len >> (8 * Byte)));
  Body.append(Canonical);
  Body.append(encodeVerdict(resultToVerdict(Result, /*CacheHit=*/false)));
  return Body;
}

bool decodeEntryBody(const std::string &Body, std::string &Canonical,
                     VerifyResult &Result) {
  if (Body.size() < 4)
    return false;
  uint32_t Len = 0;
  for (unsigned Byte = 0; Byte != 4; ++Byte)
    Len |= static_cast<uint32_t>(static_cast<unsigned char>(Body[Byte]))
           << (8 * Byte);
  if (Body.size() - 4 < Len)
    return false;
  Canonical = Body.substr(4, Len);
  std::string Error;
  std::optional<VerdictMsg> Msg =
      decodeVerdict(Body.substr(4 + Len), Error);
  if (!Msg)
    return false;
  Result = verdictToResult(*Msg);
  return true;
}

} // namespace

uint64_t tnums::service::analyzerVerdictFingerprint() {
  Fnv1a Hash;
  Hash.mixString("tnums-verdict-version");
  Hash.mixString(bpf::analyzerVersionTag());
  // Every transfer function the reduced product can dispatch, in enum
  // order; MulAlgorithm::Our is the one the analyzer runs.
  for (BinaryOp Op : AllBinaryOps)
    Hash.mixU64(opFingerprint(Op, MulAlgorithm::Our));
  return Hash.digest();
}

uint64_t tnums::service::verdictCacheKey(const VerifyRequest &Request) {
  Fnv1a Hash;
  Hash.mixString(encodeRequestCanonical(Request));
  return Hash.digest();
}

std::string VerdictCache::entryPath(uint64_t Key) const {
  return formatString("%s/verdict-%016" PRIx64 ".vkt", Dir.c_str(), Key);
}

std::unique_ptr<VerdictCache> VerdictCache::open(const std::string &Dir,
                                                 std::string &Error) {
  return open(Dir, analyzerVerdictFingerprint(), Error);
}

std::unique_ptr<VerdictCache>
VerdictCache::open(const std::string &Dir, uint64_t VersionFingerprint,
                   std::string &Error) {
  return open(Dir, VersionFingerprint, VerdictCacheLimits(), Error);
}

std::unique_ptr<VerdictCache>
VerdictCache::open(const std::string &Dir, uint64_t VersionFingerprint,
                   const VerdictCacheLimits &Limits, std::string &Error) {
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  if (Ec) {
    Error = formatString("cannot create verdict cache directory %s: %s",
                         Dir.c_str(), Ec.message().c_str());
    return nullptr;
  }
  sweepOrphanedTempFiles(Dir);
  std::string ManifestPath = Dir + "/" + ManifestName;
  if (std::optional<std::string> Existing = readFile(ManifestPath)) {
    std::string Text = *Existing;
    if (takeLine(Text) != ManifestMagic) {
      Error = formatString("%s is not a tnums verdict cache",
                           ManifestPath.c_str());
      return nullptr;
    }
    // Note: deliberately no fingerprint in the manifest. Entries carry
    // their own, so a version bump invalidates exactly the stale entries
    // lazily instead of refusing (or wiping) the whole store.
  } else if (!writeFileDurable(ManifestPath,
                               std::string(ManifestMagic) + "\n", Error)) {
    return nullptr;
  }
  std::unique_ptr<VerdictCache> Cache(
      new VerdictCache(Dir, VersionFingerprint, Limits));
  Cache->loadDiskIndex();
  return Cache;
}

void VerdictCache::loadDiskIndex() {
  // Scan whatever a previous process (possibly uncapped, possibly a
  // different cap) left behind. Recency is unknowable across restarts, so
  // file mtime stands in for it: the sweep below evicts oldest-first,
  // with the file name as a deterministic tie-break.
  struct Found {
    uint64_t Key;
    uint64_t Bytes;
    fs::file_time_type MTime;
    std::string Name;
  };
  std::vector<Found> Entries;
  std::error_code Ec;
  for (const fs::directory_entry &Ent : fs::directory_iterator(Dir, Ec)) {
    std::string Name = Ent.path().filename().string();
    // Exactly "verdict-<16 hex>.vkt"; anything else in the directory (the
    // manifest, foreign files) is not the cache's to manage.
    if (Name.size() != 28 || Name.compare(0, 8, "verdict-") != 0 ||
        Name.compare(24, 4, ".vkt") != 0)
      continue;
    char *End = nullptr;
    errno = 0;
    unsigned long long Key = std::strtoull(Name.c_str() + 8, &End, 16);
    if (errno != 0 || End != Name.c_str() + 24)
      continue;
    std::error_code SizeEc, TimeEc;
    uint64_t Bytes = Ent.file_size(SizeEc);
    fs::file_time_type MTime = Ent.last_write_time(TimeEc);
    if (SizeEc || TimeEc)
      continue;
    Entries.push_back({static_cast<uint64_t>(Key), Bytes, MTime,
                       std::move(Name)});
  }
  std::sort(Entries.begin(), Entries.end(),
            [](const Found &A, const Found &B) {
              return A.MTime != B.MTime ? A.MTime < B.MTime : A.Name < B.Name;
            });
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const Found &E : Entries)
    indexDiskEntryLocked(E.Key, E.Bytes); // Appends: oldest lands in front.
  evictOverCapLocked();
}

void VerdictCache::indexDiskEntryLocked(uint64_t Key, uint64_t Bytes) {
  auto It = Disk.find(Key);
  if (It != Disk.end()) {
    DiskBytes -= It->second.Bytes;
    DiskBytes += Bytes;
    It->second.Bytes = Bytes;
    Lru.splice(Lru.end(), Lru, It->second.LruPos);
    return;
  }
  Lru.push_back(Key);
  Disk.emplace(Key, DiskEntry{Bytes, std::prev(Lru.end())});
  DiskBytes += Bytes;
}

void VerdictCache::touchDiskEntryLocked(uint64_t Key) {
  auto It = Disk.find(Key);
  if (It != Disk.end())
    Lru.splice(Lru.end(), Lru, It->second.LruPos);
}

void VerdictCache::forgetDiskEntryLocked(uint64_t Key) {
  auto It = Disk.find(Key);
  if (It == Disk.end())
    return;
  DiskBytes -= It->second.Bytes;
  Lru.erase(It->second.LruPos);
  Disk.erase(It);
}

void VerdictCache::evictOverCapLocked() {
  while (!Lru.empty() &&
         ((Limits.MaxEntries && Lru.size() > Limits.MaxEntries) ||
          (Limits.MaxBytes && DiskBytes > Limits.MaxBytes))) {
    // The caps are hard bounds: the least-recently-used entry goes even
    // if it is the one just stored (a single entry above MaxBytes).
    uint64_t Victim = Lru.front();
    ::unlink(entryPath(Victim).c_str());
    Memory.erase(Victim);
    forgetDiskEntryLocked(Victim);
    ++Stats.Evictions;
  }
}

std::optional<VerifyResult>
VerdictCache::lookup(const VerifyRequest &Request) {
  std::string Canonical = encodeRequestCanonical(Request);
  uint64_t Key = verdictCacheKey(Request);

  std::lock_guard<std::mutex> Lock(Mutex);
  ++Stats.Lookups;

  auto It = Memory.find(Key);
  if (It != Memory.end()) {
    if (It->second.Canonical == Canonical) {
      ++Stats.MemoryHits;
      touchDiskEntryLocked(Key); // A hit is a use: protect from eviction.
      return It->second.Result;
    }
    ++Stats.Misses; // Key collision: a different request owns the slot.
    return std::nullopt;
  }

  std::string Path = entryPath(Key);
  std::optional<std::string> Contents = readFile(Path);
  if (!Contents) {
    ++Stats.Misses;
    forgetDiskEntryLocked(Key); // Vanished externally; stop tracking it.
    return std::nullopt;
  }
  const uint64_t EntryBytes = Contents->size();

  // Parse strictly; anything unexpected is poison -- refuse and GC.
  auto Poisoned = [&]() -> std::optional<VerifyResult> {
    ++Stats.PoisonedRejected;
    ::unlink(Path.c_str());
    forgetDiskEntryLocked(Key);
    return std::nullopt;
  };
  std::string Text = std::move(*Contents);
  // A complete entry always ends in a newline; a torn tail never does.
  if (Text.empty() || Text.back() != '\n')
    return Poisoned();
  if (takeLine(Text) != EntryMagic)
    return Poisoned();
  std::optional<uint64_t> EntryFp =
      parseKeyedHex64(takeLine(Text), "versionfp");
  std::optional<uint64_t> EntryKey = parseKeyedHex64(takeLine(Text), "key");
  if (!EntryFp || !EntryKey || *EntryKey != Key)
    return Poisoned();
  std::string PayloadLine = takeLine(Text);
  if (PayloadLine.compare(0, 8, "payload ") != 0 || !Text.empty())
    return Poisoned();
  std::optional<std::string> Body = hexDecode(PayloadLine.substr(8));
  std::string EntryCanonical;
  VerifyResult Result;
  if (!Body || !decodeEntryBody(*Body, EntryCanonical, Result))
    return Poisoned();

  if (*EntryFp != VersionFp) {
    // A verdict of an older analyzer/tnum-op version: stale, exactly like
    // a campaign cell whose operator fingerprint moved. GC and re-verify.
    ++Stats.StaleInvalidated;
    ++Stats.Misses;
    ::unlink(Path.c_str());
    forgetDiskEntryLocked(Key); // GC'd, not evicted: no Evictions count.
    return std::nullopt;
  }
  if (EntryCanonical != Canonical) {
    ++Stats.Misses; // Key collision on disk: not this request's verdict.
    return std::nullopt;
  }

  ++Stats.DiskHits;
  indexDiskEntryLocked(Key, EntryBytes);
  Memory.emplace(Key, MemEntry{std::move(Canonical), Result});
  return Result;
}

bool VerdictCache::store(const VerifyRequest &Request,
                         const VerifyResult &Result, std::string &Error) {
  std::string Canonical = encodeRequestCanonical(Request);
  uint64_t Key = verdictCacheKey(Request);

  // Persist only the wire verdict fields; KeepStates tables are
  // per-batch debugging aids, not verdicts.
  VerifyResult Slim = Result;
  Slim.InStates.clear();

  std::string Contents = formatString(
      "%s\nversionfp %016" PRIx64 "\nkey %016" PRIx64 "\npayload ",
      EntryMagic, VersionFp, Key);
  Contents += hexEncode(encodeEntryBody(Canonical, Slim));
  Contents += "\n";

  std::lock_guard<std::mutex> Lock(Mutex);
  ++Stats.Stores;
  Memory[Key] = MemEntry{std::move(Canonical), std::move(Slim)};
  if (!writeFileDurable(entryPath(Key), Contents, Error))
    return false; // In-memory entry stays; nothing on disk to track.
  indexDiskEntryLocked(Key, Contents.size());
  evictOverCapLocked(); // The insert may have pushed the cache over a cap.
  return true;
}

VerdictCacheStats VerdictCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Stats;
}
