//===- service/Daemon.h - tnumsd: verification-as-a-service -----*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived verification daemon: many clients connect over a
/// UNIX-domain (and optionally loopback-TCP) socket, speak the
/// length-prefixed protocol in WireProtocol.h, and submit programs for
/// verdicts. This is the production face the ROADMAP's north star asks
/// for -- PR 3's VerificationService is batch-only and in-process; tnumsd
/// serves the same verdicts to concurrent untrusted clients with
/// admission control and a persistent cross-run verdict cache.
///
/// Architecture (one poll() event loop + the shared ThreadPool):
///
///  * The event loop owns every socket and all admission bookkeeping.
///    Frames are reassembled per connection (FrameDecoder); a protocol
///    violation earns an Error reply and a close.
///  * Admitted Submits enter a priority/fair-share queue: higher Priority
///    bytes run strictly first; within a priority class, tenants are
///    served round-robin (per-tenant FIFO preserved) so one tenant's
///    backlog cannot starve another's single request.
///  * Admission control produces explicit backpressure, never silent
///    queuing: when queued+running reaches MaxPendingRequests the daemon
///    replies Busy(pool); when a tenant exceeds TenantMaxInFlight it
///    replies Busy(quota). Clients retry.
///  * Workers (ThreadPool) pop jobs, consult the VerdictCache (memory,
///    then disk), analyze on miss with a per-worker recycled Analyzer
///    engine, store the verdict durably, and hand the encoded reply to a
///    completion queue; a self-pipe wakes the event loop to flush it.
///
/// Determinism contract: a verdict is a pure function of the canonical
/// request (VerificationService's contract), so every client receives
/// bit-identical verdict frames for identical submissions regardless of
/// connection count, interleaving, priorities, cache state, or daemon
/// restarts -- cache hits serve the same bytes analysis would produce.
/// tests/DaemonTest.cpp pins this against the in-process engine.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_SERVICE_DAEMON_H
#define TNUMS_SERVICE_DAEMON_H

#include "service/WireProtocol.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

namespace tnums {
namespace service {

struct DaemonConfig {
  /// Path of the UNIX-domain listening socket (required).
  std::string SocketPath;
  /// Also listen on loopback TCP when >= 0 (0 picks an ephemeral port;
  /// see Daemon::tcpPort()).
  int TcpPort = -1;
  /// Worker threads; 0 means hardware concurrency.
  unsigned NumThreads = 0;
  /// Verdict-cache directory; empty disables persistence (the daemon
  /// still runs, every verdict is analyzed).
  std::string CacheDir;
  /// Verdict-cache occupancy caps (VerdictCache.h): entry count and total
  /// entry-file bytes. 0 means unlimited; over-cap stores evict
  /// least-recently-used entries, and open() sweeps a pre-existing
  /// over-cap store oldest-first.
  uint64_t CacheMaxEntries = 0;
  uint64_t CacheMaxBytes = 0;
  /// Backpressure threshold: jobs queued+running before Submits are
  /// refused with Busy(pool). 0 means 4x worker threads.
  uint64_t MaxPendingRequests = 0;
  /// Per-tenant in-flight cap before Busy(quota); 0 means unlimited.
  uint64_t TenantMaxInFlight = 0;
  /// Install the process-wide metrics recorder (support/Metrics.h) when
  /// the daemon starts. Serving metrics is the daemon's job, so this
  /// defaults on; observation never changes verdict bytes.
  bool EnableMetrics = true;
  /// When non-empty, write the Prometheus text exposition here, refreshed
  /// atomically (temp+rename) every MetricsRefreshMs and once at exit.
  std::string MetricsTextPath;
  /// Exposition refresh cadence in milliseconds.
  unsigned MetricsRefreshMs = 1000;
  /// When non-empty, append one JSONL event per request-lifecycle step
  /// (received/admitted/queued/analyzing/replied/busy; see
  /// docs/OBSERVABILITY.md for the schema).
  std::string EventLogPath;
};

/// Live counters (mirrors wire StatsReplyMsg; see WireProtocol.h).
using DaemonStats = StatsReplyMsg;

/// One daemon instance. create() binds the sockets; run() blocks serving
/// until requestStop() (any thread / signal context) or a Shutdown frame.
/// Tests run() it on a thread in-process; tools/tnumsd.cpp wraps it as a
/// standalone binary.
class Daemon {
public:
  static std::optional<Daemon> create(const DaemonConfig &Config,
                                      std::string &Error);

  Daemon(Daemon &&) noexcept;
  Daemon &operator=(Daemon &&) noexcept;
  ~Daemon();

  /// Serves until stopped. Returns false with \p Error set only on a
  /// fatal event-loop failure (never on client misbehavior).
  bool run(std::string &Error);

  /// Requests a graceful stop: the event loop finishes in-flight work,
  /// flushes replies, and run() returns. Async-signal-safe.
  void requestStop();

  /// The bound TCP port (valid once create() returned with TcpPort >= 0).
  uint16_t tcpPort() const;

  /// Counter snapshot (thread-safe; the same numbers StatsReply serves).
  DaemonStats stats() const;

  /// The version fingerprint guarding the cache (HelloAck advertises it).
  uint64_t versionFingerprint() const;

private:
  struct Impl;
  explicit Daemon(std::unique_ptr<Impl> ImplV);

  std::unique_ptr<Impl> Pimpl;
};

} // namespace service
} // namespace tnums

#endif // TNUMS_SERVICE_DAEMON_H
