//===- service/WireProtocol.cpp - tnumsd framing and codec ----------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "service/WireProtocol.h"

#include "support/Table.h"

#include <cstring>

using namespace tnums;
using namespace tnums::bpf;
using namespace tnums::service;

namespace {

//===----------------------------------------------------------------------===//
// Byte-level cursors
//
// Writer appends little-endian fields to a std::string; Reader walks a
// byte range with bounds checks on every read and a latched failure flag,
// so a malformed buffer can never cause an over-read -- only a clean
// decode error.
//===----------------------------------------------------------------------===//

class Writer {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void u16(uint16_t V) {
    u8(static_cast<uint8_t>(V));
    u8(static_cast<uint8_t>(V >> 8));
  }
  void u32(uint32_t V) {
    u16(static_cast<uint16_t>(V));
    u16(static_cast<uint16_t>(V >> 16));
  }
  void u64(uint64_t V) {
    u32(static_cast<uint32_t>(V));
    u32(static_cast<uint32_t>(V >> 32));
  }
  /// Length-prefixed string (u32 length + raw bytes).
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Buf.append(S);
  }
  std::string take() { return std::move(Buf); }

private:
  std::string Buf;
};

class Reader {
public:
  Reader(const std::string &Bytes)
      : Data(Bytes.data()), Size(Bytes.size()) {}

  bool u8(uint8_t &V) {
    if (!need(1))
      return false;
    V = static_cast<uint8_t>(Data[Pos++]);
    return true;
  }
  bool u16(uint16_t &V) {
    uint8_t Lo, Hi;
    if (!u8(Lo) || !u8(Hi))
      return false;
    V = static_cast<uint16_t>(Lo | (static_cast<uint16_t>(Hi) << 8));
    return true;
  }
  bool u32(uint32_t &V) {
    uint16_t Lo, Hi;
    if (!u16(Lo) || !u16(Hi))
      return false;
    V = Lo | (static_cast<uint32_t>(Hi) << 16);
    return true;
  }
  bool u64(uint64_t &V) {
    uint32_t Lo, Hi;
    if (!u32(Lo) || !u32(Hi))
      return false;
    V = Lo | (static_cast<uint64_t>(Hi) << 32);
    return true;
  }
  /// Bounded length-prefixed string.
  bool str(std::string &S, uint32_t MaxLen = MaxWireString) {
    uint32_t Len;
    if (!u32(Len))
      return false;
    if (Len > MaxLen || !need(Len)) {
      Failed = true;
      return false;
    }
    S.assign(Data + Pos, Len);
    Pos += Len;
    return true;
  }
  /// True when the whole buffer was consumed with no read failure --
  /// trailing garbage makes a payload malformed.
  bool done() const { return !Failed && Pos == Size; }
  bool failed() const { return Failed; }

private:
  bool need(size_t N) {
    if (Failed || Size - Pos < N) {
      Failed = true;
      return false;
    }
    return true;
  }

  const char *Data;
  size_t Size;
  size_t Pos = 0;
  bool Failed = false;
};

/// The shared "decode failed" epilogue.
template <typename T>
std::optional<T> malformed(const char *What, std::string &Error) {
  Error = formatString("malformed %s payload (truncated, out of bounds, "
                       "or trailing bytes)",
                       What);
  return std::nullopt;
}

/// Enum-range guards: the decoder refuses out-of-range discriminants so
/// downstream switches never see an invalid enum value.
constexpr uint8_t MaxInsnKind = static_cast<uint8_t>(Insn::Kind::Exit);
constexpr uint8_t MaxAluOp = static_cast<uint8_t>(AluOp::Neg);
constexpr uint8_t MaxCompareOp = static_cast<uint8_t>(CompareOp::Set);

} // namespace

bool tnums::service::isRequestType(MsgType Type) {
  switch (Type) {
  case MsgType::Hello:
  case MsgType::Submit:
  case MsgType::StatsQuery:
  case MsgType::Shutdown:
  case MsgType::MetricsQuery:
    return true;
  default:
    return false;
  }
}

const char *tnums::service::wireErrorName(WireError Error) {
  switch (Error) {
  case WireError::None:
    return "none";
  case WireError::BadMagic:
    return "bad-magic";
  case WireError::BadVersion:
    return "bad-version";
  case WireError::BadType:
    return "bad-type";
  case WireError::OversizedFrame:
    return "oversized-frame";
  case WireError::MalformedPayload:
    return "malformed-payload";
  case WireError::HelloRequired:
    return "hello-required";
  case WireError::Internal:
    return "internal";
  }
  return "unknown";
}

std::string tnums::service::encodeFrame(MsgType Type, uint64_t RequestId,
                                        const std::string &Payload) {
  Writer W;
  W.u32(FrameMagic);
  W.u8(ProtocolVersion);
  W.u8(static_cast<uint8_t>(Type));
  W.u16(0); // reserved
  W.u64(RequestId);
  W.u32(static_cast<uint32_t>(Payload.size()));
  std::string Head = W.take();
  Head.append(Payload);
  return Head;
}

std::string
tnums::service::encodeRequestCanonical(const VerifyRequest &Request) {
  Writer W;
  W.u64(Request.MemSize);
  W.u64(Request.AnalyzerOpts.WideningThreshold);
  W.u64(Request.AnalyzerOpts.MaxInsnVisits);
  W.u32(static_cast<uint32_t>(Request.Prog.size()));
  for (const Insn &I : Request.Prog) {
    W.u8(static_cast<uint8_t>(I.InsnKind));
    W.u8(static_cast<uint8_t>(I.Alu));
    W.u8(static_cast<uint8_t>(I.Cmp));
    W.u8(I.Dst);
    W.u8(I.Src);
    W.u8(I.UsesImm ? 1 : 0);
    W.u8(I.Size);
    W.u8(I.Is32 ? 1 : 0);
    W.u64(static_cast<uint64_t>(I.Imm));
    W.u64(static_cast<uint64_t>(static_cast<int64_t>(I.Offset)));
  }
  return W.take();
}

namespace {

/// Canonical-request decoder over an open Reader (shared by Submit and
/// the standalone form; the standalone form additionally requires the
/// buffer to end here).
bool readRequestCanonical(Reader &R, VerifyRequest &Out) {
  uint64_t Widening;
  uint32_t InsnCount;
  if (!R.u64(Out.MemSize) || !R.u64(Widening) ||
      !R.u64(Out.AnalyzerOpts.MaxInsnVisits) || !R.u32(InsnCount))
    return false;
  if (Widening > UINT32_MAX || InsnCount > MaxWireInsns)
    return false;
  Out.AnalyzerOpts.WideningThreshold = static_cast<unsigned>(Widening);
  std::vector<Insn> Insns;
  Insns.reserve(InsnCount);
  for (uint32_t N = 0; N != InsnCount; ++N) {
    Insn I;
    uint8_t Kind, Alu, Cmp, UsesImm, Is32;
    uint64_t Imm, Offset;
    if (!R.u8(Kind) || !R.u8(Alu) || !R.u8(Cmp) || !R.u8(I.Dst) ||
        !R.u8(I.Src) || !R.u8(UsesImm) || !R.u8(I.Size) || !R.u8(Is32) ||
        !R.u64(Imm) || !R.u64(Offset))
      return false;
    // Range-check every discriminant and flag byte; structural program
    // checks (register numbers, jump targets) remain validate()'s job.
    if (Kind > MaxInsnKind || Alu > MaxAluOp || Cmp > MaxCompareOp ||
        UsesImm > 1 || Is32 > 1)
      return false;
    int64_t SignedOffset = static_cast<int64_t>(Offset);
    if (SignedOffset < INT32_MIN || SignedOffset > INT32_MAX)
      return false;
    I.InsnKind = static_cast<Insn::Kind>(Kind);
    I.Alu = static_cast<AluOp>(Alu);
    I.Cmp = static_cast<CompareOp>(Cmp);
    I.UsesImm = UsesImm == 1;
    I.Is32 = Is32 == 1;
    I.Imm = static_cast<int64_t>(Imm);
    I.Offset = static_cast<int32_t>(SignedOffset);
    Insns.push_back(I);
  }
  Out.Prog = Program(std::move(Insns));
  return true;
}

} // namespace

std::optional<VerifyRequest>
tnums::service::decodeRequestCanonical(const std::string &Bytes,
                                       std::string &Error) {
  Reader R(Bytes);
  VerifyRequest Request;
  if (!readRequestCanonical(R, Request) || !R.done())
    return malformed<VerifyRequest>("canonical-request", Error);
  return Request;
}

std::string tnums::service::encodeHello(const HelloMsg &Msg) {
  Writer W;
  W.str(Msg.Tenant);
  return W.take();
}

std::optional<HelloMsg>
tnums::service::decodeHello(const std::string &Payload, std::string &Error) {
  Reader R(Payload);
  HelloMsg Msg;
  if (!R.str(Msg.Tenant, 256) || !R.done())
    return malformed<HelloMsg>("hello", Error);
  return Msg;
}

std::string tnums::service::encodeHelloAck(const HelloAckMsg &Msg) {
  Writer W;
  W.u64(Msg.VersionFingerprint);
  W.u32(Msg.MaxPayload);
  W.u8(Msg.Version);
  W.str(Msg.BuildInfo);
  return W.take();
}

std::optional<HelloAckMsg>
tnums::service::decodeHelloAck(const std::string &Payload,
                               std::string &Error) {
  Reader R(Payload);
  HelloAckMsg Msg;
  if (!R.u64(Msg.VersionFingerprint) || !R.u32(Msg.MaxPayload) ||
      !R.u8(Msg.Version) || !R.str(Msg.BuildInfo) || !R.done())
    return malformed<HelloAckMsg>("hello-ack", Error);
  return Msg;
}

std::string tnums::service::encodeSubmit(const SubmitMsg &Msg) {
  Writer W;
  W.u8(Msg.Priority);
  std::string Head = W.take();
  Head.append(encodeRequestCanonical(Msg.Request));
  return Head;
}

std::optional<SubmitMsg>
tnums::service::decodeSubmit(const std::string &Payload, std::string &Error) {
  Reader R(Payload);
  SubmitMsg Msg;
  if (!R.u8(Msg.Priority) || !readRequestCanonical(R, Msg.Request) ||
      !R.done())
    return malformed<SubmitMsg>("submit", Error);
  return Msg;
}

std::string tnums::service::encodeVerdict(const VerdictMsg &Msg) {
  Writer W;
  W.u8(Msg.Accepted ? 1 : 0);
  W.u8(Msg.CacheHit ? 1 : 0);
  W.u64(Msg.InsnVisits);
  W.str(Msg.StructuralError);
  W.u32(static_cast<uint32_t>(Msg.Violations.size()));
  for (const Violation &V : Msg.Violations) {
    W.u64(V.Pc);
    W.str(V.Message);
  }
  return W.take();
}

std::optional<VerdictMsg>
tnums::service::decodeVerdict(const std::string &Payload,
                              std::string &Error) {
  Reader R(Payload);
  VerdictMsg Msg;
  uint8_t Accepted, CacheHit;
  uint32_t NumViolations;
  if (!R.u8(Accepted) || !R.u8(CacheHit) || !R.u64(Msg.InsnVisits) ||
      !R.str(Msg.StructuralError) || !R.u32(NumViolations) ||
      Accepted > 1 || CacheHit > 1 || NumViolations > MaxWireViolations)
    return malformed<VerdictMsg>("verdict", Error);
  Msg.Accepted = Accepted == 1;
  Msg.CacheHit = CacheHit == 1;
  Msg.Violations.reserve(NumViolations);
  for (uint32_t N = 0; N != NumViolations; ++N) {
    Violation V;
    uint64_t Pc;
    if (!R.u64(Pc) || !R.str(V.Message))
      return malformed<VerdictMsg>("verdict", Error);
    V.Pc = static_cast<size_t>(Pc);
    Msg.Violations.push_back(std::move(V));
  }
  if (!R.done())
    return malformed<VerdictMsg>("verdict", Error);
  return Msg;
}

std::string tnums::service::encodeBusy(const BusyMsg &Msg) {
  Writer W;
  W.u8(Msg.Reason);
  W.u64(Msg.PendingDepth);
  return W.take();
}

std::optional<BusyMsg>
tnums::service::decodeBusy(const std::string &Payload, std::string &Error) {
  Reader R(Payload);
  BusyMsg Msg;
  if (!R.u8(Msg.Reason) || !R.u64(Msg.PendingDepth) || Msg.Reason > 1 ||
      !R.done())
    return malformed<BusyMsg>("busy", Error);
  return Msg;
}

std::string tnums::service::encodeError(const ErrorMsg &Msg) {
  Writer W;
  W.u16(static_cast<uint16_t>(Msg.Code));
  W.str(Msg.Message);
  return W.take();
}

std::optional<ErrorMsg>
tnums::service::decodeError(const std::string &Payload, std::string &Error) {
  Reader R(Payload);
  uint16_t Code;
  ErrorMsg Msg;
  if (!R.u16(Code) || !R.str(Msg.Message) ||
      Code > static_cast<uint16_t>(WireError::Internal) || !R.done())
    return malformed<ErrorMsg>("error", Error);
  Msg.Code = static_cast<WireError>(Code);
  return Msg;
}

std::string tnums::service::encodeStatsReply(const StatsReplyMsg &Msg) {
  Writer W;
  W.u64(Msg.Connections);
  W.u64(Msg.Submits);
  W.u64(Msg.Verdicts);
  W.u64(Msg.Analyses);
  W.u64(Msg.CacheMemoryHits);
  W.u64(Msg.CacheDiskHits);
  W.u64(Msg.CacheStores);
  W.u64(Msg.CacheStaleInvalidated);
  W.u64(Msg.CachePoisonedRejected);
  W.u64(Msg.CacheEvictions);
  W.u64(Msg.BusyPool);
  W.u64(Msg.BusyQuota);
  W.u64(Msg.ProtocolErrors);
  W.u64(Msg.PeakInFlight);
  W.u64(Msg.PeakQueueDepth);
  return W.take();
}

std::optional<StatsReplyMsg>
tnums::service::decodeStatsReply(const std::string &Payload,
                                 std::string &Error) {
  Reader R(Payload);
  StatsReplyMsg Msg;
  if (!R.u64(Msg.Connections) || !R.u64(Msg.Submits) ||
      !R.u64(Msg.Verdicts) || !R.u64(Msg.Analyses) ||
      !R.u64(Msg.CacheMemoryHits) || !R.u64(Msg.CacheDiskHits) ||
      !R.u64(Msg.CacheStores) || !R.u64(Msg.CacheStaleInvalidated) ||
      !R.u64(Msg.CachePoisonedRejected) || !R.u64(Msg.CacheEvictions) ||
      !R.u64(Msg.BusyPool) ||
      !R.u64(Msg.BusyQuota) || !R.u64(Msg.ProtocolErrors) ||
      !R.u64(Msg.PeakInFlight) || !R.u64(Msg.PeakQueueDepth) || !R.done())
    return malformed<StatsReplyMsg>("stats-reply", Error);
  return Msg;
}

std::string tnums::service::encodeMetricsReply(const MetricsReplyMsg &Msg) {
  Writer W;
  W.str(Msg.BuildInfo);
  W.u32(static_cast<uint32_t>(Msg.Metrics.size()));
  for (const MetricValue &V : Msg.Metrics) {
    W.str(V.Name);
    W.str(V.Labels);
    W.u8(static_cast<uint8_t>(V.Kind));
    W.u64(V.Count);
    W.u64(static_cast<uint64_t>(V.Value));
    W.u64(static_cast<uint64_t>(V.Peak));
    W.u64(V.Sum);
    W.u32(static_cast<uint32_t>(V.Buckets.size()));
    for (uint64_t Bucket : V.Buckets)
      W.u64(Bucket);
  }
  return W.take();
}

std::optional<MetricsReplyMsg>
tnums::service::decodeMetricsReply(const std::string &Payload,
                                   std::string &Error) {
  Reader R(Payload);
  MetricsReplyMsg Msg;
  uint32_t Count = 0;
  if (!R.str(Msg.BuildInfo) || !R.u32(Count) || Count > MaxWireMetrics)
    return malformed<MetricsReplyMsg>("metrics-reply", Error);
  Msg.Metrics.resize(Count);
  for (MetricValue &V : Msg.Metrics) {
    uint8_t Kind = 0;
    uint64_t Value = 0, Peak = 0;
    uint32_t NumBuckets = 0;
    if (!R.str(V.Name) || !R.str(V.Labels) || !R.u8(Kind) ||
        Kind > static_cast<uint8_t>(MetricKind::Histogram) ||
        !R.u64(V.Count) || !R.u64(Value) || !R.u64(Peak) || !R.u64(V.Sum) ||
        !R.u32(NumBuckets) || NumBuckets > MaxWireBuckets)
      return malformed<MetricsReplyMsg>("metrics-reply", Error);
    V.Kind = static_cast<MetricKind>(Kind);
    V.Value = static_cast<int64_t>(Value);
    V.Peak = static_cast<int64_t>(Peak);
    V.Buckets.resize(NumBuckets);
    for (uint64_t &Bucket : V.Buckets)
      if (!R.u64(Bucket))
        return malformed<MetricsReplyMsg>("metrics-reply", Error);
  }
  if (!R.done())
    return malformed<MetricsReplyMsg>("metrics-reply", Error);
  return Msg;
}

VerifyResult tnums::service::verdictToResult(const VerdictMsg &Msg) {
  VerifyResult Result;
  Result.Done = true;
  Result.Accepted = Msg.Accepted;
  Result.InsnVisits = Msg.InsnVisits;
  Result.StructuralError = Msg.StructuralError;
  Result.Violations = Msg.Violations;
  return Result;
}

VerdictMsg tnums::service::resultToVerdict(const VerifyResult &Result,
                                           bool CacheHit) {
  VerdictMsg Msg;
  Msg.Accepted = Result.Accepted;
  Msg.CacheHit = CacheHit;
  Msg.InsnVisits = Result.InsnVisits;
  Msg.StructuralError = Result.StructuralError;
  Msg.Violations = Result.Violations;
  return Msg;
}

//===----------------------------------------------------------------------===//
// FrameDecoder
//===----------------------------------------------------------------------===//

void FrameDecoder::feed(const char *Data, size_t Size) {
  // Compact lazily so a long-lived connection's buffer does not grow
  // without bound while staying O(1) amortized.
  if (Consumed > 4096 && Consumed > Buffer.size() / 2) {
    Buffer.erase(0, Consumed);
    Consumed = 0;
  }
  Buffer.append(Data, Size);
}

FrameDecoder::Status FrameDecoder::next(Frame &Out, WireError &Code,
                                        std::string &Error) {
  if (Broken) {
    Code = BrokenCode;
    Error = BrokenError;
    return Status::Corrupt;
  }
  size_t Avail = Buffer.size() - Consumed;
  if (Avail < FrameHeaderBytes)
    return Status::NeedMore;
  const char *Head = Buffer.data() + Consumed;
  auto U8 = [&](size_t I) {
    return static_cast<uint8_t>(Head[I]);
  };
  auto U16 = [&](size_t I) {
    return static_cast<uint16_t>(U8(I) | (static_cast<uint16_t>(U8(I + 1))
                                          << 8));
  };
  auto U32 = [&](size_t I) {
    return U16(I) | (static_cast<uint32_t>(U16(I + 2)) << 16);
  };
  auto U64 = [&](size_t I) {
    return U32(I) | (static_cast<uint64_t>(U32(I + 4)) << 32);
  };

  auto Fail = [&](WireError C, std::string Message) {
    Broken = true;
    BrokenCode = C;
    BrokenError = std::move(Message);
    Code = BrokenCode;
    Error = BrokenError;
    return Status::Corrupt;
  };

  if (U32(0) != FrameMagic)
    return Fail(WireError::BadMagic,
                formatString("frame magic %08x != %08x", U32(0), FrameMagic));
  if (U8(4) != ProtocolVersion)
    return Fail(WireError::BadVersion,
                formatString("protocol version %u unsupported", U8(4)));
  uint8_t TypeByte = U8(5);
  if (TypeByte < static_cast<uint8_t>(MsgType::Hello) ||
      TypeByte > static_cast<uint8_t>(MsgType::MetricsReply))
    return Fail(WireError::BadType,
                formatString("unknown frame type %u", TypeByte));
  if (U16(6) != 0)
    return Fail(WireError::BadMagic, "reserved header bytes nonzero");
  uint32_t PayloadLen = U32(16);
  if (PayloadLen > MaxPayloadBytes)
    return Fail(WireError::OversizedFrame,
                formatString("payload length %u exceeds cap %u", PayloadLen,
                             MaxPayloadBytes));
  if (Avail < FrameHeaderBytes + PayloadLen)
    return Status::NeedMore;

  Out.Type = static_cast<MsgType>(TypeByte);
  Out.RequestId = U64(8);
  Out.Payload.assign(Head + FrameHeaderBytes, PayloadLen);
  Consumed += FrameHeaderBytes + PayloadLen;
  return Status::Ready;
}
