//===- service/Corpus.h - Request corpus save/load --------------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A durable, line-oriented corpus of verification requests, so a fuzz
/// campaign's program stream can be dumped once and replayed exactly --
/// across runs, machines, and code changes (regression corpora for
/// findings, seed corpora for CI smokes).
///
/// Format ("tnums-corpus v1", locked by tests/CorpusTest.cpp):
///
///   tnums-corpus v1
///   # any number of comment / blank lines anywhere after the header
///   <lower-case hex of encodeRequestCanonical(request)>
///   ...
///
/// Each entry is the canonical request encoding (WireProtocol.h) in hex,
/// one request per line -- the same bytes the wire protocol submits and
/// the VerdictCache keys on, so a corpus line identifies a verdict the
/// same way every other subsystem does. Text + hex keeps corpora
/// greppable, diffable, and safely versionable.
///
/// Loading is strict: a bad header, stray character, odd-length line, or
/// undecodable entry fails the whole load with a "<name>:<line>: why"
/// diagnostic, and every decoded program must pass Program::validate().
/// A corpus either replays exactly or is refused -- no silent skips.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_SERVICE_CORPUS_H
#define TNUMS_SERVICE_CORPUS_H

#include "service/VerificationService.h"

#include <optional>
#include <string>
#include <vector>

namespace tnums {
namespace service {

/// The corpus text for \p Requests: header line plus one hex-encoded
/// canonical request per line.
std::string encodeCorpusText(const std::vector<VerifyRequest> &Requests);

/// Parses corpus text. \p Name labels diagnostics (usually the file
/// path). nullopt with a "<name>:<line>: why" diagnostic in \p Error on
/// any malformed input; entries are canonical-decoded and their programs
/// re-validated, so every returned request is structurally sound.
std::optional<std::vector<VerifyRequest>>
parseCorpusText(const std::string &Text, const std::string &Name,
                std::string &Error);

/// Writes \p Requests to \p Path atomically enough for corpora (write,
/// then close; no temp-file dance -- corpora are developer artifacts).
/// False with \p Error set on I/O failure.
bool saveCorpus(const std::string &Path,
                const std::vector<VerifyRequest> &Requests,
                std::string &Error);

/// Reads and parses \p Path. nullopt with \p Error set on I/O failure or
/// any parse failure (see parseCorpusText).
std::optional<std::vector<VerifyRequest>> loadCorpus(const std::string &Path,
                                                     std::string &Error);

} // namespace service
} // namespace tnums

#endif // TNUMS_SERVICE_CORPUS_H
