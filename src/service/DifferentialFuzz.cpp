//===- service/DifferentialFuzz.cpp - Whole-service fuzz oracle -----------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "service/DifferentialFuzz.h"

#include "bpf/Decoded.h"
#include "support/Table.h"

#include <algorithm>

using namespace tnums;
using namespace tnums::bpf;
using namespace tnums::service;

std::string FuzzReport::toString() const {
  return formatString(
      "%llu programs (%llu accepted, %llu structural rejects, %llu semantic "
      "rejects), %llu concrete runs (%llu hit the step budget; %llu "
      "programs zero-coverage), %zu findings",
      static_cast<unsigned long long>(Programs),
      static_cast<unsigned long long>(Accepted),
      static_cast<unsigned long long>(RejectedStructural),
      static_cast<unsigned long long>(RejectedSemantic),
      static_cast<unsigned long long>(ConcreteRuns),
      static_cast<unsigned long long>(StepLimitRuns),
      static_cast<unsigned long long>(ZeroCoveragePrograms),
      Findings.size());
}

namespace {

/// Requests per verify-then-check slice. The containment oracle needs the
/// per-instruction fixpoint states, but only for the slice currently
/// being checked -- slicing bounds the campaign's resident state tables
/// to one slice's worth regardless of Config.Programs, without touching
/// any oracle or determinism property (verdicts are per-program pure, and
/// the generation sequence is independent of the slicing).
constexpr uint64_t SlicePrograms = 256;

/// Oracles 1-3 over one verified slice; \p SliceBegin maps slice slots
/// back to campaign-wide program indices (used in findings and as the
/// per-program memory seed, so slicing cannot change either).
void runOracles(uint64_t Seed, const FuzzConfig &Config, uint64_t SliceBegin,
                const std::vector<VerifyRequest> &Requests,
                const BatchResult &Batch, FuzzReport &Report) {
  for (size_t Slot = 0; Slot != Requests.size(); ++Slot) {
    size_t Index = static_cast<size_t>(SliceBegin) + Slot;
    const VerifyResult &Verdict = Batch.Results[Slot];
    const Program &P = Requests[Slot].Prog;

    if (!Verdict.Accepted) {
      // Oracle 3: every rejection is witnessed.
      if (Verdict.StructuralError.empty() && Verdict.Violations.empty())
        Report.Findings.push_back({Index, "unwitnessed-rejection",
                                   "rejected with no structural error and "
                                   "no violations\n" +
                                       P.disassemble()});
      continue;
    }

    // Decode once per accepted program; every concrete run below reuses
    // the decoded form (this loop is the campaign's hot path). decode()
    // refuses exactly what Program::validate() refuses, and the service
    // accepted this program, so a failure here is itself a finding.
    std::string DecodeError;
    std::optional<DecodedProgram> Exec = DecodedProgram::decode(P, DecodeError);
    if (!Exec) {
      Report.Findings.push_back({Index, "undecodable-accepted-program",
                                 DecodeError + "\n" + P.disassemble()});
      continue;
    }

    // Runs of this program that got past the step budget: only those
    // exercise oracles 1-2. A program where none did is zero-coverage.
    unsigned CoveredRuns = 0;
    for (unsigned Run = 0; Run != Config.RunsPerProgram; ++Run) {
      Xoshiro256 MemRng(Seed ^ (0x9E3779B97F4A7C15ull * (Index + 1) + Run));
      // The request's own region size, not the generator default --
      // replayed corpora carry theirs per entry.
      std::vector<uint8_t> Mem(Requests[Slot].MemSize);
      for (uint8_t &Byte : Mem)
        Byte = static_cast<uint8_t>(MemRng.next());

      ExecResult R = Exec->run(Mem, Config.StepLimit);
      ++Report.ConcreteRuns;

      if (R.St == ExecResult::Status::StepLimit) {
        ++Report.StepLimitRuns; // Tolerated: see the header's oracle 1.
        continue;
      }
      ++CoveredRuns;
      // Oracle 1: accepted programs never trap.
      if (!R.ok()) {
        Report.Findings.push_back(
            {Index, "accepted-program-trap",
             formatString("run %u trapped at insn %zu: %s\n", Run, R.FaultPc,
                          R.Message.c_str()) +
                 P.disassemble()});
        break; // Further runs of a broken program add no information.
      }

      // Oracle 2: concrete register values lie inside the fixpoint
      // abstract state at the exit this run actually reached.
      const AbstractState &Final = Verdict.InStates[R.ExitPc];
      if (!Final.Reachable) {
        Report.Findings.push_back(
            {Index, "unreachable-exit",
             formatString("run %u exited at insn %zu, which the fixpoint "
                          "marks unreachable\n",
                          Run, R.ExitPc) +
                 P.disassemble()});
        break;
      }
      bool Escaped = false;
      for (unsigned RegNum = 0; RegNum != NumRegs && !Escaped; ++RegNum) {
        const AbsReg &Abs = Final.Regs[RegNum];
        if (!Abs.isScalar() || !Exec->initialized()[RegNum])
          continue;
        if (!Abs.value().contains(Exec->registers()[RegNum])) {
          Report.Findings.push_back(
              {Index, "containment-escape",
               formatString("run %u: r%u = %llu escapes %s at exit insn "
                            "%zu\n",
                            Run, RegNum,
                            static_cast<unsigned long long>(
                                Exec->registers()[RegNum]),
                            Abs.toString().c_str(), R.ExitPc) +
                   P.disassemble()});
          Escaped = true;
        }
      }
      if (Escaped)
        break;
    }
    if (Config.RunsPerProgram && CoveredRuns == 0)
      ++Report.ZeroCoveragePrograms;
  }
}

} // namespace

FuzzReport tnums::service::runDifferentialFuzz(uint64_t Seed,
                                               const FuzzConfig &Config) {
  FuzzReport Report;

  ProgramGen Gen(Seed, Config.Gen);
  ServiceConfig ServiceCfg = Config.Service;
  ServiceCfg.KeepStates = true;
  ServiceCfg.StopAtFirstReject = false;
  VerificationService Service(ServiceCfg);

  // The mutation chain crosses slice boundaries: every MutateEvery-th
  // program is a mutant of its predecessor.
  const bool Replaying = !Config.Replay.empty();
  const uint64_t TotalPrograms =
      Replaying ? Config.Replay.size() : Config.Programs;
  Program Predecessor;
  std::vector<VerifyRequest> Requests;
  for (uint64_t SliceBegin = 0; SliceBegin < TotalPrograms;
       SliceBegin += SlicePrograms) {
    uint64_t SliceEnd =
        std::min<uint64_t>(TotalPrograms, SliceBegin + SlicePrograms);

    // Phase 1: the deterministic program stream for this slice -- either
    // the replayed corpus verbatim (structurally unsound entries are not
    // special-cased: the service rejects them with a witness, which is
    // exactly what oracle 3 then checks) or fresh generation.
    Requests.clear();
    Requests.reserve(SliceEnd - SliceBegin);
    for (uint64_t Index = SliceBegin; Index != SliceEnd; ++Index) {
      if (Replaying) {
        Requests.push_back(Config.Replay[Index]);
        continue;
      }
      bool Mutant = Config.MutateEvery && Index > 0 &&
                    Index % Config.MutateEvery == 0;
      Program P = Mutant ? Gen.mutate(Predecessor) : Gen.next();
      if (std::optional<std::string> Error = P.validate()) {
        // The generator contract says this cannot happen; report rather
        // than assert so a fuzz campaign surfaces it as a finding.
        Report.Findings.push_back(
            {static_cast<size_t>(Index), "invalid-generated-program",
             *Error + "\n" + P.disassemble()});
        P = Gen.next(); // Keep the stream going with a fresh draw.
      }
      // The copy is only needed when the NEXT program will mutate it.
      if (Config.MutateEvery && (Index + 1) % Config.MutateEvery == 0)
        Predecessor = P;
      VerifyRequest Request;
      Request.Prog = std::move(P);
      Request.MemSize = Config.Gen.MemSize;
      Requests.push_back(std::move(Request));
    }

    // Phase 2: batch verification with fixpoint states retained (for
    // this slice only).
    BatchResult Batch = Service.verifyBatch(Requests);
    Report.Programs += Batch.Stats.Programs;
    Report.Accepted += Batch.Stats.Accepted;
    Report.RejectedStructural += Batch.Stats.RejectedStructural;
    Report.RejectedSemantic += Batch.Stats.RejectedSemantic;

    // Phase 3: the differential oracles, program by program in index
    // order (findings are deterministic). Input memories derive from
    // (Seed, program index, run), independent of scheduling.
    runOracles(Seed, Config, SliceBegin, Requests, Batch, Report);
  }

  // A campaign in which EVERY accepted program was zero-coverage proved
  // nothing: oracles 1-2 never actually fired, so "0 findings" would be
  // vacuous. Fail loudly instead of reporting a clean run -- shard
  // farming at deep widths hits this when a StepLimit is tuned too low
  // for a loop-heavy profile.
  if (Config.RunsPerProgram && Report.Accepted > 0 &&
      Report.ZeroCoveragePrograms == Report.Accepted)
    Report.Findings.push_back(
        {0, "zero-coverage-campaign",
         formatString("all %llu accepted programs exhausted the %llu-step "
                      "budget on every run; oracles 1-2 checked nothing "
                      "(raise StepLimit or change the profile)",
                      static_cast<unsigned long long>(Report.Accepted),
                      static_cast<unsigned long long>(Config.StepLimit))});
  return Report;
}
