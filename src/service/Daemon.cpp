//===- service/Daemon.cpp - tnumsd: verification-as-a-service -------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "service/Daemon.h"

#include "service/VerdictCache.h"
#include "service/VerificationService.h"
#include "support/Checkpoint.h"
#include "support/Metrics.h"
#include "support/Socket.h"
#include "support/Table.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <chrono>
#include <cstddef>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace tnums;
using namespace tnums::service;

namespace {

/// One admitted Submit on its way through the worker pool. Identifies its
/// connection by id, not fd: fds are recycled by the kernel, ids never.
struct Job {
  uint64_t ConnId = 0;
  uint64_t RequestId = 0;
  uint8_t Priority = 0;
  uint64_t AdmitNs = 0; ///< traceNowNs() at admission (span timestamps).
  std::string Tenant;
  VerifyRequest Request;
};

/// What a worker hands back to the event loop: the fully encoded reply
/// frame plus the bookkeeping the loop must settle (pending counts,
/// per-tenant in-flight, analysis counters).
struct Completion {
  uint64_t ConnId = 0;
  uint64_t RequestId = 0;
  uint64_t AdmitNs = 0;
  std::string Tenant;
  std::string FrameBytes;
  bool Analyzed = false;
  bool CacheHit = false;
  bool Accepted = false;
};

/// Daemon telemetry handles (support/Metrics.h). The lifecycle counters
/// deliberately mirror the StatsReply fields so the exposition, the wire
/// stats, and the event log all account for the same requests.
struct DaemonMetrics {
  Counter Received{"tnumsd_requests_received_total"};
  Counter Admitted{"tnumsd_requests_admitted_total"};
  Counter BusyPool{"tnumsd_busy_total", "reason=\"pool\""};
  Counter BusyQuota{"tnumsd_busy_total", "reason=\"quota\""};
  Counter VerdictHit{"tnumsd_verdicts_total", "cache=\"hit\""};
  Counter VerdictMiss{"tnumsd_verdicts_total", "cache=\"miss\""};
  Counter ProtocolErrors{"tnumsd_protocol_errors_total"};
  Counter Connections{"tnumsd_connections_total"};
  Gauge QueueDepth{"tnumsd_queue_depth"};
  Gauge InFlight{"tnumsd_inflight_jobs"};
  Gauge OpenConns{"tnumsd_connections_open"};
  Histogram QueueWaitNs{"tnumsd_request_phase_ns", "phase=\"queued\""};
  Histogram AnalyzeNs{"tnumsd_request_phase_ns", "phase=\"analyzing\""};
  Histogram TotalNs{"tnumsd_request_phase_ns", "phase=\"total\""};
};

DaemonMetrics &daemonMetrics() {
  static DaemonMetrics M;
  return M;
}

void raiseAtomicMax(std::atomic<uint64_t> &Slot, uint64_t Value) {
  uint64_t Seen = Slot.load(std::memory_order_relaxed);
  while (Value > Seen &&
         !Slot.compare_exchange_weak(Seen, Value, std::memory_order_relaxed))
    ;
}

/// One priority class of the job queue: per-tenant FIFO deques served
/// round-robin by a rotating cursor. Rotation holds exactly the tenants
/// with queued jobs, so the scan below is O(1) per pop.
struct PrioClass {
  std::vector<std::string> Rotation;
  size_t Cursor = 0;
  std::unordered_map<std::string, std::deque<Job>> PerTenant;
};

/// One client connection owned by the event loop.
struct Connection {
  OwnedFd Fd;
  FrameDecoder Decoder;
  std::string OutBuf;
  size_t OutOff = 0;       ///< Prefix of OutBuf already written.
  bool HelloDone = false;
  bool CloseAfterFlush = false;
  std::string Tenant;
};

} // namespace

struct Daemon::Impl {
  DaemonConfig Config;
  unsigned Threads = 1;
  uint64_t MaxPending = 1;
  uint64_t VersionFp = 0;

  OwnedFd UnixListen;
  OwnedFd TcpListen; ///< Invalid unless Config.TcpPort >= 0.
  uint16_t BoundTcpPort = 0;
  std::optional<SelfPipe> Pipe;
  std::unique_ptr<VerdictCache> Cache;

  std::atomic<bool> StopFlag{false};

  // Event-loop-only state (no locks needed: one thread touches it).
  uint64_t NextConnId = 1;
  std::map<uint64_t, Connection> Conns;
  uint64_t PendingJobs = 0; ///< Admitted jobs queued or running.
  std::unordered_map<std::string, uint64_t> TenantInFlight;

  // The job queue, shared between the event loop (push) and pump tasks
  // (pop). ActivePumps <= Threads pump tasks exist at any moment; each
  // drains jobs until the queue is empty, so pool occupancy tracks load
  // without a task per job.
  std::mutex QueueMutex;
  std::map<uint8_t, PrioClass, std::greater<uint8_t>> Queue;
  unsigned ActivePumps = 0;

  std::mutex CompletionMutex;
  std::vector<Completion> Completions;

  mutable std::mutex StatsMutex;
  DaemonStats Counters;

  // Observability: the structured request-lifecycle log (inert unless
  // Config.EventLogPath is set) and the queued/running occupancy with
  // high-water marks for StatsReply and the exit banner. Atomics because
  // the event loop and workers both move jobs through these states.
  EventLog Events;
  std::atomic<uint64_t> QueuedJobs{0};
  std::atomic<uint64_t> RunningJobs{0};
  std::atomic<uint64_t> PeakQueuedJobs{0};
  std::atomic<uint64_t> PeakRunningJobs{0};

  // Declared last so its destructor runs FIRST: workers drain and join
  // while the cache, pipe, and mutexes above are still alive.
  std::optional<ThreadPool> Pool;

  //===--------------------------------------------------------------------===//
  // Worker side
  //===--------------------------------------------------------------------===//

  /// Appends one lifecycle event when the log is active. Every event
  /// carries (conn, req) -- request ids are only unique per connection,
  /// so the pair is the correlation key.
  void logEvent(const char *Event, uint64_t ConnId, uint64_t RequestId,
                const std::string &Tenant,
                const std::function<void(JsonLineBuilder &)> &Extra = {}) {
    if (!Events.active())
      return;
    JsonLineBuilder Line;
    Line.field("ts_ms", traceWallMs())
        .field("event", Event)
        .field("conn", ConnId)
        .field("req", RequestId)
        .field("tenant", Tenant);
    if (Extra)
      Extra(Line);
    Events.write(Line.str());
  }

  void noteQueued(uint64_t Delta) {
    uint64_t Now = Delta ? QueuedJobs.fetch_add(Delta,
                                                std::memory_order_relaxed) +
                               Delta
                         : QueuedJobs.load(std::memory_order_relaxed);
    raiseAtomicMax(PeakQueuedJobs, Now);
    daemonMetrics().QueueDepth.set(static_cast<int64_t>(Now));
  }
  void noteDequeued() {
    uint64_t Now =
        QueuedJobs.fetch_sub(1, std::memory_order_relaxed) - 1;
    daemonMetrics().QueueDepth.set(static_cast<int64_t>(Now));
    uint64_t Running =
        RunningJobs.fetch_add(1, std::memory_order_relaxed) + 1;
    raiseAtomicMax(PeakRunningJobs, Running);
    daemonMetrics().InFlight.set(static_cast<int64_t>(Running));
  }
  void noteFinished() {
    uint64_t Running =
        RunningJobs.fetch_sub(1, std::memory_order_relaxed) - 1;
    daemonMetrics().InFlight.set(static_cast<int64_t>(Running));
  }

  bool popJob(Job &Out) {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    for (auto It = Queue.begin(); It != Queue.end(); It = Queue.begin()) {
      PrioClass &Class = It->second;
      if (Class.Rotation.empty()) {
        Queue.erase(It);
        continue;
      }
      if (Class.Cursor >= Class.Rotation.size())
        Class.Cursor = 0;
      const std::string Tenant = Class.Rotation[Class.Cursor];
      std::deque<Job> &Fifo = Class.PerTenant[Tenant];
      Out = std::move(Fifo.front());
      Fifo.pop_front();
      if (Fifo.empty()) {
        // Cursor now already points at the next tenant.
        Class.PerTenant.erase(Tenant);
        Class.Rotation.erase(Class.Rotation.begin() +
                             static_cast<ptrdiff_t>(Class.Cursor));
      } else {
        ++Class.Cursor; // Round-robin: next tenant gets the next pop.
      }
      if (Class.Rotation.empty())
        Queue.erase(Queue.begin());
      noteDequeued();
      return true;
    }
    --ActivePumps;
    return false;
  }

  void pumpLoop() {
    Job Current;
    while (popJob(Current))
      processJob(Current);
  }

  void processJob(const Job &Work) {
    DaemonMetrics &M = daemonMetrics();
    const bool Observing = metricsEnabled() || Events.active();
    uint64_t StartNs = Observing ? traceNowNs() : 0;
    if (Observing && Work.AdmitNs)
      M.QueueWaitNs.record(StartNs - Work.AdmitNs);
    logEvent("analyzing", Work.ConnId, Work.RequestId, Work.Tenant,
             [&](JsonLineBuilder &Line) {
               Line.field("wait_ms",
                          double(StartNs - Work.AdmitNs) / 1e6);
             });

    VerifyResult Result;
    bool CacheHit = false;
    bool Analyzed = false;
    if (Cache) {
      if (std::optional<VerifyResult> Hit = Cache->lookup(Work.Request)) {
        Result = std::move(*Hit);
        CacheHit = true;
      }
    }
    if (!CacheHit) {
      // One engine per pool worker, reused across every job it runs --
      // the same amortization the batch engine gets from its chunk
      // workers.
      static thread_local bpf::Analyzer Engine;
      verifyRequestInto(Work.Request, /*KeepStates=*/false, Engine, Result);
      Analyzed = true;
      if (Cache) {
        // A failed store degrades to per-process caching (the verdict is
        // still correct and still served); VerdictCache already installed
        // the memory entry.
        std::string StoreError;
        Cache->store(Work.Request, Result, StoreError);
      }
    }

    if (Observing)
      M.AnalyzeNs.record(traceNowNs() - StartNs);

    Completion Done;
    Done.ConnId = Work.ConnId;
    Done.RequestId = Work.RequestId;
    Done.AdmitNs = Work.AdmitNs;
    Done.Tenant = Work.Tenant;
    Done.Analyzed = Analyzed;
    Done.CacheHit = CacheHit;
    Done.Accepted = Result.Accepted;
    Done.FrameBytes = encodeFrame(MsgType::Verdict, Work.RequestId,
                                  encodeVerdict(resultToVerdict(Result, CacheHit)));
    {
      std::lock_guard<std::mutex> Lock(CompletionMutex);
      Completions.push_back(std::move(Done));
    }
    noteFinished();
    Pipe->notify();
  }

  //===--------------------------------------------------------------------===//
  // Event-loop side
  //===--------------------------------------------------------------------===//

  void bumpStat(uint64_t DaemonStats::*Field) {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++(Counters.*Field);
  }

  DaemonStats statsSnapshot() const {
    DaemonStats Out;
    {
      std::lock_guard<std::mutex> Lock(StatsMutex);
      Out = Counters;
    }
    if (Cache) {
      VerdictCacheStats CacheStats = Cache->stats();
      Out.CacheMemoryHits = CacheStats.MemoryHits;
      Out.CacheDiskHits = CacheStats.DiskHits;
      Out.CacheStores = CacheStats.Stores;
      Out.CacheStaleInvalidated = CacheStats.StaleInvalidated;
      Out.CachePoisonedRejected = CacheStats.PoisonedRejected;
      Out.CacheEvictions = CacheStats.Evictions;
    }
    Out.PeakInFlight = PeakRunningJobs.load(std::memory_order_relaxed);
    Out.PeakQueueDepth = PeakQueuedJobs.load(std::memory_order_relaxed);
    return Out;
  }

  void sendFrame(Connection &Conn, MsgType Type, uint64_t RequestId,
                 const std::string &Payload) {
    Conn.OutBuf += encodeFrame(Type, RequestId, Payload);
  }

  /// Protocol failure: count it, answer with Error, drop the connection
  /// once the reply drains.
  void failConn(Connection &Conn, uint64_t ConnId, WireError Code,
                uint64_t RequestId, const std::string &Message) {
    bumpStat(&DaemonStats::ProtocolErrors);
    daemonMetrics().ProtocolErrors.add();
    logEvent("protocol-error", ConnId, RequestId, Conn.Tenant,
             [&](JsonLineBuilder &Line) {
               Line.field("code", wireErrorName(Code));
             });
    ErrorMsg Msg;
    Msg.Code = Code;
    Msg.Message = Message;
    sendFrame(Conn, MsgType::Error, RequestId, encodeError(Msg));
    Conn.CloseAfterFlush = true;
  }

  void enqueueJob(Job Work) {
    noteQueued(1);
    std::lock_guard<std::mutex> Lock(QueueMutex);
    PrioClass &Class = Queue[Work.Priority];
    std::deque<Job> &Fifo = Class.PerTenant[Work.Tenant];
    if (Fifo.empty())
      Class.Rotation.push_back(Work.Tenant);
    Fifo.push_back(std::move(Work));
    if (ActivePumps < Threads) {
      ++ActivePumps;
      Pool->submit([this] { pumpLoop(); });
    }
  }

  void handleSubmit(Connection &Conn, uint64_t ConnId, const Frame &Msg) {
    std::string DecodeError;
    std::optional<SubmitMsg> Submit = decodeSubmit(Msg.Payload, DecodeError);
    if (!Submit) {
      failConn(Conn, ConnId, WireError::MalformedPayload, Msg.RequestId,
               DecodeError);
      return;
    }

    DaemonMetrics &M = daemonMetrics();
    M.Received.add();
    logEvent("received", ConnId, Msg.RequestId, Conn.Tenant);

    // Admission control: explicit Busy backpressure instead of unbounded
    // queuing. A stopping daemon admits nothing new. A Busy reply is the
    // request's terminal lifecycle event.
    if (StopFlag.load(std::memory_order_relaxed) ||
        PendingJobs >= MaxPending) {
      bumpStat(&DaemonStats::BusyPool);
      M.BusyPool.add();
      logEvent("busy", ConnId, Msg.RequestId, Conn.Tenant,
               [&](JsonLineBuilder &Line) {
                 Line.field("reason", "pool").field("depth", PendingJobs);
               });
      BusyMsg Busy;
      Busy.Reason = 0;
      Busy.PendingDepth = PendingJobs;
      sendFrame(Conn, MsgType::Busy, Msg.RequestId, encodeBusy(Busy));
      return;
    }
    if (Config.TenantMaxInFlight != 0 &&
        TenantInFlight[Conn.Tenant] >= Config.TenantMaxInFlight) {
      bumpStat(&DaemonStats::BusyQuota);
      M.BusyQuota.add();
      logEvent("busy", ConnId, Msg.RequestId, Conn.Tenant,
               [&](JsonLineBuilder &Line) {
                 Line.field("reason", "quota").field("depth", PendingJobs);
               });
      BusyMsg Busy;
      Busy.Reason = 1;
      Busy.PendingDepth = PendingJobs;
      sendFrame(Conn, MsgType::Busy, Msg.RequestId, encodeBusy(Busy));
      return;
    }

    bumpStat(&DaemonStats::Submits);
    ++PendingJobs;
    ++TenantInFlight[Conn.Tenant];
    M.Admitted.add();
    logEvent("admitted", ConnId, Msg.RequestId, Conn.Tenant,
             [&](JsonLineBuilder &Line) {
               Line.field("priority", uint64_t(Submit->Priority))
                   .field("pending", PendingJobs);
             });

    Job Work;
    Work.ConnId = ConnId;
    Work.RequestId = Msg.RequestId;
    Work.Priority = Submit->Priority;
    Work.AdmitNs =
        (metricsEnabled() || Events.active()) ? traceNowNs() : 0;
    Work.Tenant = Conn.Tenant;
    Work.Request = std::move(Submit->Request);
    logEvent("queued", ConnId, Msg.RequestId, Conn.Tenant);
    enqueueJob(std::move(Work));
  }

  void handleFrame(Connection &Conn, uint64_t ConnId, const Frame &Msg) {
    if (!isRequestType(Msg.Type)) {
      failConn(Conn, ConnId, WireError::BadType, Msg.RequestId,
               "reply-direction frame from client");
      return;
    }
    if (!Conn.HelloDone && Msg.Type != MsgType::Hello) {
      failConn(Conn, ConnId, WireError::HelloRequired, Msg.RequestId,
               "first frame must be Hello");
      return;
    }
    switch (Msg.Type) {
    case MsgType::Hello: {
      std::string DecodeError;
      std::optional<HelloMsg> Hello = decodeHello(Msg.Payload, DecodeError);
      if (!Hello) {
        failConn(Conn, ConnId, WireError::MalformedPayload, Msg.RequestId,
                 DecodeError);
        return;
      }
      Conn.HelloDone = true;
      Conn.Tenant = Hello->Tenant.empty() ? "anon" : Hello->Tenant;
      HelloAckMsg Ack;
      Ack.VersionFingerprint = VersionFp;
      Ack.BuildInfo = buildInfoJson();
      sendFrame(Conn, MsgType::HelloAck, Msg.RequestId, encodeHelloAck(Ack));
      return;
    }
    case MsgType::Submit:
      handleSubmit(Conn, ConnId, Msg);
      return;
    case MsgType::StatsQuery:
      sendFrame(Conn, MsgType::StatsReply, Msg.RequestId,
                encodeStatsReply(statsSnapshot()));
      return;
    case MsgType::MetricsQuery: {
      MetricsReplyMsg Reply;
      Reply.BuildInfo = buildInfoJson();
      Reply.Metrics = MetricsRegistry::instance().snapshot().Metrics;
      sendFrame(Conn, MsgType::MetricsReply, Msg.RequestId,
                encodeMetricsReply(Reply));
      return;
    }
    case MsgType::Shutdown:
      sendFrame(Conn, MsgType::ShutdownAck, Msg.RequestId, std::string());
      Conn.CloseAfterFlush = true;
      StopFlag.store(true, std::memory_order_relaxed);
      return;
    default:
      failConn(Conn, ConnId, WireError::BadType, Msg.RequestId, "unhandled type");
      return;
    }
  }

  /// Reads everything available, then pops and handles complete frames.
  /// Returns false when the connection must be dropped immediately
  /// (orderly EOF or a read failure).
  bool serviceReadable(Connection &Conn, uint64_t ConnId) {
    char Buf[16384];
    for (;;) {
      ssize_t Count = ::read(Conn.Fd.get(), Buf, sizeof(Buf));
      if (Count > 0) {
        Conn.Decoder.feed(Buf, static_cast<size_t>(Count));
        continue;
      }
      if (Count == 0)
        return false; // Orderly EOF.
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        break;
      return false;
    }
    Frame Msg;
    WireError Code;
    std::string DecodeError;
    while (!Conn.CloseAfterFlush) {
      FrameDecoder::Status Status = Conn.Decoder.next(Msg, Code, DecodeError);
      if (Status == FrameDecoder::Status::NeedMore)
        break;
      if (Status == FrameDecoder::Status::Corrupt) {
        failConn(Conn, ConnId, Code, /*RequestId=*/0, DecodeError);
        break;
      }
      handleFrame(Conn, ConnId, Msg);
    }
    return true;
  }

  /// Flushes as much of OutBuf as the socket takes. Returns false when
  /// the connection must be dropped (write failure).
  bool serviceWritable(Connection &Conn) {
    while (Conn.OutOff < Conn.OutBuf.size()) {
      ssize_t Count = ::write(Conn.Fd.get(), Conn.OutBuf.data() + Conn.OutOff,
                              Conn.OutBuf.size() - Conn.OutOff);
      if (Count > 0) {
        Conn.OutOff += static_cast<size_t>(Count);
        continue;
      }
      if (Count < 0 && errno == EINTR)
        continue;
      if (Count < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
        return true;
      return false;
    }
    Conn.OutBuf.clear();
    Conn.OutOff = 0;
    return true;
  }

  void acceptPending(OwnedFd &Listener) {
    for (;;) {
      int Fd = ::accept(Listener.get(), nullptr, nullptr);
      if (Fd < 0) {
        if (errno == EINTR)
          continue;
        break; // EAGAIN or a transient accept failure: next poll retries.
      }
      std::string IgnoredError;
      setNonBlocking(Fd, IgnoredError);
      Connection Conn;
      Conn.Fd = OwnedFd(Fd);
      Conns.emplace(NextConnId++, std::move(Conn));
      bumpStat(&DaemonStats::Connections);
      daemonMetrics().Connections.add();
    }
  }

  void drainCompletions() {
    std::vector<Completion> Batch;
    {
      std::lock_guard<std::mutex> Lock(CompletionMutex);
      Batch.swap(Completions);
    }
    DaemonMetrics &M = daemonMetrics();
    for (Completion &Done : Batch) {
      --PendingJobs;
      auto TenantIt = TenantInFlight.find(Done.Tenant);
      if (TenantIt != TenantInFlight.end() && --TenantIt->second == 0)
        TenantInFlight.erase(TenantIt);
      {
        std::lock_guard<std::mutex> Lock(StatsMutex);
        ++Counters.Verdicts;
        if (Done.Analyzed)
          ++Counters.Analyses;
      }
      (Done.CacheHit ? M.VerdictHit : M.VerdictMiss).add();
      uint64_t TotalNs = Done.AdmitNs ? traceNowNs() - Done.AdmitNs : 0;
      if (Done.AdmitNs)
        M.TotalNs.record(TotalNs);
      logEvent("replied", Done.ConnId, Done.RequestId, Done.Tenant,
               [&](JsonLineBuilder &Line) {
                 Line.field("accepted", Done.Accepted)
                     .field("cache_hit", Done.CacheHit)
                     .field("analyzed", Done.Analyzed)
                     .field("total_ms", double(TotalNs) / 1e6);
               });
      auto ConnIt = Conns.find(Done.ConnId);
      if (ConnIt != Conns.end())
        ConnIt->second.OutBuf += Done.FrameBytes; // Else: client left.
    }
  }

  size_t pendingCompletionCount() {
    std::lock_guard<std::mutex> Lock(CompletionMutex);
    return Completions.size();
  }

  /// Refreshes the Prometheus text exposition atomically (temp+rename), so
  /// a scraper reading MetricsTextPath never sees a torn file. Failures are
  /// swallowed: observability must never take the daemon down.
  void writeExposition() {
    if (Config.MetricsTextPath.empty() || !metricsEnabled())
      return;
    std::string IgnoredError;
    writeFileDurable(Config.MetricsTextPath,
                     MetricsRegistry::instance().snapshot().toPrometheusText(),
                     IgnoredError);
  }

  bool run(std::string &Error) {
    ignoreSigpipe();
    std::string IgnoredError;
    setNonBlocking(UnixListen.get(), IgnoredError);
    if (TcpListen.valid())
      setNonBlocking(TcpListen.get(), IgnoredError);

    using Clock = std::chrono::steady_clock;
    std::optional<Clock::time_point> FlushDeadline;
    const std::chrono::milliseconds RefreshPeriod(
        Config.MetricsRefreshMs ? Config.MetricsRefreshMs : 1000u);
    Clock::time_point NextExposition = Clock::now() + RefreshPeriod;

    std::vector<pollfd> Polled;
    std::vector<uint64_t> PolledConn; // Parallel to the connection pollfds.

    for (;;) {
      drainCompletions();
      daemonMetrics().OpenConns.set(static_cast<int64_t>(Conns.size()));
      if (!Config.MetricsTextPath.empty() && Clock::now() >= NextExposition) {
        writeExposition();
        NextExposition = Clock::now() + RefreshPeriod;
      }

      // Drop connections whose replies are fully flushed and that were
      // marked for closing (protocol error, shutdown ack).
      for (auto It = Conns.begin(); It != Conns.end();) {
        if (It->second.CloseAfterFlush &&
            It->second.OutOff >= It->second.OutBuf.size())
          It = Conns.erase(It);
        else
          ++It;
      }

      bool Stopping = StopFlag.load(std::memory_order_relaxed);
      if (Stopping && PendingJobs == 0 && pendingCompletionCount() == 0) {
        bool AllFlushed = true;
        for (const auto &Entry : Conns)
          if (Entry.second.OutOff < Entry.second.OutBuf.size())
            AllFlushed = false;
        if (AllFlushed)
          break;
        // Give stragglers a bounded grace period to take their replies.
        if (!FlushDeadline)
          FlushDeadline = Clock::now() + std::chrono::seconds(2);
        else if (Clock::now() >= *FlushDeadline)
          break;
      }

      Polled.clear();
      PolledConn.clear();
      Polled.push_back({Pipe->readFd(), POLLIN, 0});
      if (!Stopping) {
        Polled.push_back({UnixListen.get(), POLLIN, 0});
        if (TcpListen.valid())
          Polled.push_back({TcpListen.get(), POLLIN, 0});
      }
      size_t FirstConnSlot = Polled.size();
      for (auto &Entry : Conns) {
        Connection &Conn = Entry.second;
        short Events = 0;
        if (!Conn.CloseAfterFlush)
          Events |= POLLIN;
        if (Conn.OutOff < Conn.OutBuf.size())
          Events |= POLLOUT;
        if (Events == 0)
          continue;
        Polled.push_back({Conn.Fd.get(), Events, 0});
        PolledConn.push_back(Entry.first);
      }

      int Ready = ::poll(Polled.data(), Polled.size(), /*timeout=*/200);
      if (Ready < 0) {
        if (errno == EINTR)
          continue;
        Error = formatString("poll failed: %s", std::strerror(errno));
        return false;
      }

      if (Polled[0].revents & POLLIN)
        Pipe->drain();
      if (!Stopping) {
        if (Polled[1].revents & POLLIN)
          acceptPending(UnixListen);
        if (TcpListen.valid() && (Polled[2].revents & POLLIN))
          acceptPending(TcpListen);
      }

      for (size_t Slot = FirstConnSlot; Slot != Polled.size(); ++Slot) {
        uint64_t ConnId = PolledConn[Slot - FirstConnSlot];
        auto ConnIt = Conns.find(ConnId);
        if (ConnIt == Conns.end())
          continue;
        Connection &Conn = ConnIt->second;
        short Revents = Polled[Slot].revents;
        if (Revents == 0)
          continue;
        bool Alive = true;
        if (Revents & (POLLIN | POLLHUP | POLLERR))
          Alive = serviceReadable(Conn, ConnId);
        if (Alive && (Revents & POLLOUT))
          Alive = serviceWritable(Conn);
        // A half-closed peer that still owes us nothing but has replies
        // pending keeps its connection until the flush completes.
        if (!Alive && Conn.OutOff >= Conn.OutBuf.size())
          Conns.erase(ConnIt);
        else if (!Alive)
          Conn.CloseAfterFlush = true;
      }
    }

    Conns.clear();
    writeExposition(); // Final refresh so the file reflects the full run.
    Events.close();
    ::unlink(Config.SocketPath.c_str());
    return true;
  }
};

std::optional<Daemon> Daemon::create(const DaemonConfig &Config,
                                     std::string &Error) {
  if (Config.SocketPath.empty()) {
    Error = "daemon requires a UNIX socket path";
    return std::nullopt;
  }
  std::unique_ptr<Impl> State(new Impl());
  State->Config = Config;
  if (Config.EnableMetrics)
    enableProcessMetrics();
  if (!Config.EventLogPath.empty() &&
      !State->Events.open(Config.EventLogPath, Error))
    return std::nullopt;
  State->Threads =
      Config.NumThreads ? Config.NumThreads : ThreadPool::hardwareConcurrency();
  State->MaxPending = Config.MaxPendingRequests
                          ? Config.MaxPendingRequests
                          : 4ull * State->Threads;

  std::optional<OwnedFd> Listener = listenUnix(Config.SocketPath, Error);
  if (!Listener)
    return std::nullopt;
  State->UnixListen = std::move(*Listener);

  if (Config.TcpPort >= 0) {
    std::optional<OwnedFd> TcpListener = listenTcpLoopback(
        static_cast<uint16_t>(Config.TcpPort), State->BoundTcpPort, Error);
    if (!TcpListener)
      return std::nullopt;
    State->TcpListen = std::move(*TcpListener);
  }

  std::optional<SelfPipe> Pipe = SelfPipe::create(Error);
  if (!Pipe)
    return std::nullopt;
  State->Pipe = std::move(*Pipe);

  if (!Config.CacheDir.empty()) {
    VerdictCacheLimits Limits;
    Limits.MaxEntries = Config.CacheMaxEntries;
    Limits.MaxBytes = Config.CacheMaxBytes;
    State->Cache = VerdictCache::open(
        Config.CacheDir, analyzerVerdictFingerprint(), Limits, Error);
    if (!State->Cache)
      return std::nullopt;
  }
  State->VersionFp = State->Cache ? State->Cache->versionFingerprint()
                                  : analyzerVerdictFingerprint();

  State->Pool.emplace(State->Threads);
  return Daemon(std::move(State));
}

Daemon::Daemon(std::unique_ptr<Impl> ImplV) : Pimpl(std::move(ImplV)) {}

Daemon::Daemon(Daemon &&) noexcept = default;
Daemon &Daemon::operator=(Daemon &&) noexcept = default;
Daemon::~Daemon() = default;

bool Daemon::run(std::string &Error) { return Pimpl->run(Error); }

void Daemon::requestStop() {
  Pimpl->StopFlag.store(true, std::memory_order_relaxed);
  Pimpl->Pipe->notify();
}

uint16_t Daemon::tcpPort() const { return Pimpl->BoundTcpPort; }

DaemonStats Daemon::stats() const { return Pimpl->statsSnapshot(); }

uint64_t Daemon::versionFingerprint() const { return Pimpl->VersionFp; }
