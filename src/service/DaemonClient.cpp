//===- service/DaemonClient.cpp - Blocking tnumsd client ------------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "service/DaemonClient.h"

#include "support/Table.h"

#include <chrono>
#include <cstring>
#include <thread>

using namespace tnums;
using namespace tnums::service;

namespace {

uint64_t readLittleU64(const unsigned char *Bytes) {
  uint64_t Value = 0;
  for (unsigned Byte = 0; Byte != 8; ++Byte)
    Value |= static_cast<uint64_t>(Bytes[Byte]) << (8 * Byte);
  return Value;
}

uint32_t readLittleU32(const unsigned char *Bytes) {
  uint32_t Value = 0;
  for (unsigned Byte = 0; Byte != 4; ++Byte)
    Value |= static_cast<uint32_t>(Bytes[Byte]) << (8 * Byte);
  return Value;
}

} // namespace

bool DaemonClient::writeFrame(MsgType Type, uint64_t RequestId,
                              const std::string &Payload,
                              std::string &Error) {
  std::string Bytes = encodeFrame(Type, RequestId, Payload);
  return writeAll(Fd.get(), Bytes.data(), Bytes.size(), Error);
}

bool DaemonClient::readFrame(Frame &Out, std::string &Error) {
  unsigned char Header[FrameHeaderBytes];
  if (!readAll(Fd.get(), Header, sizeof(Header), Error)) {
    if (Error.empty())
      Error = "daemon closed the connection";
    return false;
  }
  uint32_t Magic = readLittleU32(Header);
  uint8_t Version = Header[4];
  uint8_t Type = Header[5];
  uint16_t Reserved =
      static_cast<uint16_t>(Header[6] | (uint16_t(Header[7]) << 8));
  uint64_t RequestId = readLittleU64(Header + 8);
  uint32_t PayloadLen = readLittleU32(Header + 16);
  if (Magic != FrameMagic || Version != ProtocolVersion || Reserved != 0) {
    Error = "malformed reply header";
    return false;
  }
  if (Type < static_cast<uint8_t>(MsgType::Hello) ||
      Type > static_cast<uint8_t>(MsgType::MetricsReply)) {
    Error = formatString("unknown reply type %u", unsigned(Type));
    return false;
  }
  if (PayloadLen > MaxPayloadBytes) {
    Error = "oversized reply frame";
    return false;
  }
  Out.Type = static_cast<MsgType>(Type);
  Out.RequestId = RequestId;
  Out.Payload.resize(PayloadLen);
  if (PayloadLen != 0 &&
      !readAll(Fd.get(), Out.Payload.data(), PayloadLen, Error)) {
    if (Error.empty())
      Error = "daemon closed the connection mid-frame";
    return false;
  }
  return true;
}

bool DaemonClient::handshake(const std::string &Tenant, std::string &Error) {
  HelloMsg Hello;
  Hello.Tenant = Tenant;
  uint64_t RequestId = NextRequestId++;
  if (!writeFrame(MsgType::Hello, RequestId, encodeHello(Hello), Error))
    return false;
  Frame Reply;
  if (!readFrame(Reply, Error))
    return false;
  if (Reply.Type != MsgType::HelloAck) {
    Error = formatString("expected HelloAck, got type %u",
                         unsigned(static_cast<uint8_t>(Reply.Type)));
    return false;
  }
  std::optional<HelloAckMsg> Decoded = decodeHelloAck(Reply.Payload, Error);
  if (!Decoded)
    return false;
  Ack = *Decoded;
  return true;
}

std::optional<DaemonClient>
DaemonClient::connectUnixSocket(const std::string &Path,
                                const std::string &Tenant, unsigned TimeoutMs,
                                std::string &Error) {
  std::optional<OwnedFd> Fd = connectUnixRetry(Path, TimeoutMs, Error);
  if (!Fd)
    return std::nullopt;
  DaemonClient Client(std::move(*Fd));
  if (!Client.handshake(Tenant, Error))
    return std::nullopt;
  return Client;
}

std::optional<DaemonClient> DaemonClient::connectTcp(uint16_t Port,
                                                     const std::string &Tenant,
                                                     std::string &Error) {
  std::optional<OwnedFd> Fd = connectTcpLoopback(Port, Error);
  if (!Fd)
    return std::nullopt;
  DaemonClient Client(std::move(*Fd));
  if (!Client.handshake(Tenant, Error))
    return std::nullopt;
  return Client;
}

bool DaemonClient::submitAsync(const VerifyRequest &Request, uint8_t Priority,
                               uint64_t &RequestId, std::string &Error) {
  SubmitMsg Msg;
  Msg.Priority = Priority;
  Msg.Request = Request;
  RequestId = NextRequestId++;
  return writeFrame(MsgType::Submit, RequestId, encodeSubmit(Msg), Error);
}

bool DaemonClient::readReply(ClientReply &Reply, std::string &Error) {
  Frame Incoming;
  if (!readFrame(Incoming, Error))
    return false;
  Reply.Type = Incoming.Type;
  Reply.RequestId = Incoming.RequestId;
  switch (Incoming.Type) {
  case MsgType::Verdict: {
    std::optional<VerdictMsg> Msg = decodeVerdict(Incoming.Payload, Error);
    if (!Msg)
      return false;
    Reply.Verdict = std::move(*Msg);
    return true;
  }
  case MsgType::Busy: {
    std::optional<BusyMsg> Msg = decodeBusy(Incoming.Payload, Error);
    if (!Msg)
      return false;
    Reply.Busy = *Msg;
    return true;
  }
  case MsgType::Error: {
    std::optional<ErrorMsg> Msg = decodeError(Incoming.Payload, Error);
    if (!Msg)
      return false;
    Reply.Err = std::move(*Msg);
    return true;
  }
  case MsgType::StatsReply: {
    std::optional<StatsReplyMsg> Msg =
        decodeStatsReply(Incoming.Payload, Error);
    if (!Msg)
      return false;
    Reply.Stats = *Msg;
    return true;
  }
  case MsgType::MetricsReply: {
    std::optional<MetricsReplyMsg> Msg =
        decodeMetricsReply(Incoming.Payload, Error);
    if (!Msg)
      return false;
    Reply.Metrics = std::move(*Msg);
    return true;
  }
  case MsgType::ShutdownAck:
    return true;
  default:
    Error = formatString("unexpected reply type %u",
                         unsigned(static_cast<uint8_t>(Incoming.Type)));
    return false;
  }
}

bool DaemonClient::submit(const VerifyRequest &Request, uint8_t Priority,
                          ClientReply &Reply, std::string &Error) {
  uint64_t RequestId = 0;
  if (!submitAsync(Request, Priority, RequestId, Error))
    return false;
  return readReply(Reply, Error);
}

bool DaemonClient::submitWithRetry(const VerifyRequest &Request,
                                   uint8_t Priority, unsigned TimeoutMs,
                                   VerdictMsg &Verdict, std::string &Error) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point Deadline =
      Clock::now() + std::chrono::milliseconds(TimeoutMs);
  for (;;) {
    ClientReply Reply;
    if (!submit(Request, Priority, Reply, Error))
      return false;
    if (Reply.Type == MsgType::Verdict) {
      Verdict = std::move(Reply.Verdict);
      return true;
    }
    if (Reply.Type == MsgType::Error) {
      Error = formatString("daemon error %s: %s",
                           wireErrorName(Reply.Err.Code),
                           Reply.Err.Message.c_str());
      return false;
    }
    if (Reply.Type != MsgType::Busy) {
      Error = "unexpected reply to Submit";
      return false;
    }
    if (Clock::now() >= Deadline) {
      Error = "daemon stayed busy past the retry deadline";
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

bool DaemonClient::queryStats(StatsReplyMsg &Stats, std::string &Error) {
  uint64_t RequestId = NextRequestId++;
  if (!writeFrame(MsgType::StatsQuery, RequestId, std::string(), Error))
    return false;
  ClientReply Reply;
  if (!readReply(Reply, Error))
    return false;
  if (Reply.Type != MsgType::StatsReply) {
    Error = "expected StatsReply";
    return false;
  }
  Stats = Reply.Stats;
  return true;
}

bool DaemonClient::queryMetrics(MetricsReplyMsg &Metrics,
                                std::string &Error) {
  uint64_t RequestId = NextRequestId++;
  if (!writeFrame(MsgType::MetricsQuery, RequestId, std::string(), Error))
    return false;
  ClientReply Reply;
  if (!readReply(Reply, Error))
    return false;
  if (Reply.Type != MsgType::MetricsReply) {
    Error = "expected MetricsReply";
    return false;
  }
  Metrics = std::move(Reply.Metrics);
  return true;
}

bool DaemonClient::shutdownServer(std::string &Error) {
  uint64_t RequestId = NextRequestId++;
  if (!writeFrame(MsgType::Shutdown, RequestId, std::string(), Error))
    return false;
  ClientReply Reply;
  if (!readReply(Reply, Error))
    return false;
  if (Reply.Type != MsgType::ShutdownAck) {
    Error = "expected ShutdownAck";
    return false;
  }
  return true;
}
