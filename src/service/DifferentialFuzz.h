//===- service/DifferentialFuzz.h - Whole-service fuzz oracle ---*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Closes the generate -> verify -> execute loop: a deterministic fuzz
/// campaign over ProgramGen's scenario space, batch-verified by the
/// VerificationService and cross-checked against the concrete executor
/// (the pre-decoded DecodedProgram; bit-identical to the reference
/// Interpreter by the differential tests).
/// Three oracles must hold for every program:
///
///   1. Accepted programs never trap (no out-of-bounds access, no read of
///      an uninitialized register) on any of the random input memories.
///      Exhausting the step budget is NOT a trap: the substrate's verifier
///      proves memory safety, and mutated loop guards can legitimately
///      produce accepted-but-nonterminating programs (the kernel instead
///      rejects unbounded loops; our analyzer stays total via widening).
///   2. At the exit instruction each run actually reached, every concrete
///      scalar register value lies inside the analyzer's fixpoint abstract
///      value there -- the whole-system form of the paper's Eqn. 8.
///   3. Rejections are witnessed: a rejected program carries a structural
///      error or at least one analyzer violation (no silent rejects).
///
/// The campaign is a pure function of (seed, config): program streams,
/// input memories, and therefore findings reproduce bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_SERVICE_DIFFERENTIALFUZZ_H
#define TNUMS_SERVICE_DIFFERENTIALFUZZ_H

#include "service/ProgramGen.h"
#include "service/VerificationService.h"

namespace tnums {
namespace service {

/// Campaign shape.
struct FuzzConfig {
  /// Programs to generate and verify.
  uint64_t Programs = 500;
  /// Random input memories each accepted program is executed on.
  unsigned RunsPerProgram = 8;
  /// Every Nth program is a structure-preserving mutant of its
  /// predecessor instead of a fresh draw (0 disables mutation).
  unsigned MutateEvery = 4;
  /// Generator profile and region size.
  GenOptions Gen;
  /// Batch engine configuration. KeepStates is forced on (the containment
  /// oracle reads the fixpoint states); StopAtFirstReject is forced off
  /// (every program must be checked).
  ServiceConfig Service;
  /// Concrete step budget per run (see oracle 1 for why exhausting it is
  /// tolerated).
  uint64_t StepLimit = 1 << 20;
  /// Replay mode: when non-empty, the campaign runs the oracles over
  /// exactly these requests -- typically a corpus loaded via
  /// service/Corpus.h -- instead of generating programs (Programs and
  /// MutateEvery are ignored; Gen.MemSize only seeds defaults). Input
  /// memories still derive from (Seed, index, run), so a replayed corpus
  /// plus a seed reproduces a campaign bit-for-bit.
  std::vector<VerifyRequest> Replay;
};

/// One oracle violation, with enough context to reproduce it.
struct FuzzFinding {
  size_t ProgramIndex;
  std::string Kind; ///< "accepted-program-trap", "containment-escape",
                    ///< "unreachable-exit", "unwitnessed-rejection",
                    ///< "invalid-generated-program",
                    ///< "zero-coverage-campaign".
  std::string Details;
};

/// Campaign outcome.
struct FuzzReport {
  uint64_t Programs = 0;
  uint64_t Accepted = 0;
  uint64_t RejectedStructural = 0;
  uint64_t RejectedSemantic = 0;
  uint64_t ConcreteRuns = 0;
  /// Runs that exhausted the step budget (tolerated; tracked so a mutation
  /// profile that goes non-terminating everywhere is visible).
  uint64_t StepLimitRuns = 0;
  /// Accepted programs whose runs ALL hit the step budget. Individually
  /// tolerated (oracle 1's contract), but such a program contributes
  /// nothing to oracles 1-2 -- no run ever finished, so no trap and no
  /// containment was ever actually checked. Tracked so a StepLimit (or
  /// mutation profile) that silently zeroes the campaign's coverage is
  /// visible; a campaign where EVERY accepted program is zero-coverage
  /// fails outright (a "zero-coverage-campaign" finding).
  uint64_t ZeroCoveragePrograms = 0;
  std::vector<FuzzFinding> Findings;

  bool clean() const { return Findings.empty(); }

  /// One-line campaign summary.
  std::string toString() const;
};

/// Runs the campaign. Deterministic in (\p Seed, \p Config).
FuzzReport runDifferentialFuzz(uint64_t Seed, const FuzzConfig &Config);

} // namespace service
} // namespace tnums

#endif // TNUMS_SERVICE_DIFFERENTIALFUZZ_H
