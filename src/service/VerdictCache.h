//===- service/VerdictCache.h - Persistent cross-run verdict cache -*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The disk-backed promotion of the batch engine's per-batch content-hash
/// verdict dedup: a directory of durable verdict entries keyed exactly
/// like Campaign cells --
///
///   key  = FNV-1a(canonical request bytes)   (program x analyzer opts)
///   guard = analyzerVerdictFingerprint()     (analyzer + tnum-op versions)
///
/// so repeat traffic (the production workload is mostly duplicate
/// filters) is served from disk without re-analysis, and a version bump
/// of the analyzer or any tnum transfer function invalidates exactly the
/// stale entries -- the same soundness-preserving versioning discipline
/// the campaign store applies per cell.
///
/// Guarantees (locked by tests/VerdictCacheTest.cpp):
///
///  * Entries are written through support/Checkpoint's writeFileDurable
///    (temp + fsync + close-check + rename + dir fsync): a killed writer
///    leaves a complete entry or nothing, never a torn file.
///  * A stored entry embeds the full canonical request bytes; lookup
///    compares them exactly, so a key collision degrades to a miss,
///    never a wrong verdict.
///  * An entry whose version fingerprint differs from the cache's is
///    stale: lookup treats it as a miss, unlinks it (GC), and counts it
///    in StaleInvalidated. Entries written under the current fingerprint
///    are untouched -- invalidation is exact, not whole-store.
///  * A truncated, bit-flipped, or otherwise unparsable entry is REFUSED
///    (miss + PoisonedRejected + unlink), never misread as a verdict.
///  * Occupancy is bounded when caps are configured (VerdictCacheLimits):
///    exceeding MaxEntries or MaxBytes evicts least-recently-used entries
///    (disk file and in-memory mirror together) until back under both
///    caps -- on every store, and once at open() over whatever a previous
///    (possibly uncapped) process left behind, oldest mtime first. The
///    entries that survive keep serving byte-identical warm hits;
///    evictions are counted separately from stale/poison GC.
///
/// Lookups hit an in-memory map first (entries this process loaded or
/// stored); disk is consulted once per cold key. All methods are
/// thread-safe -- daemon workers share one cache.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_SERVICE_VERDICTCACHE_H
#define TNUMS_SERVICE_VERDICTCACHE_H

#include "service/VerificationService.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace tnums {
namespace service {

/// Digest of everything that can change a verdict besides the request
/// itself: the analyzer's version tag (bpf/Analyzer.h) and the content
/// fingerprints of every tnum transfer function the reduced product
/// dispatches (verify/Oracle.h opFingerprint over all BinaryOps). Bumping
/// any of those versions changes this digest, which is what invalidates
/// stale cache entries.
uint64_t analyzerVerdictFingerprint();

/// The cache key of \p Request: FNV-1a of its canonical wire encoding
/// (WireProtocol.h encodeRequestCanonical).
uint64_t verdictCacheKey(const VerifyRequest &Request);

/// Occupancy caps over the on-disk entry set (manifest excluded). 0
/// means unlimited. Exceeding either cap evicts least-recently-used
/// entries until the cache is back under both; the over-cap sweep at
/// open() seeds recency from file mtimes (oldest evicted first).
struct VerdictCacheLimits {
  uint64_t MaxEntries = 0; ///< Entry-count cap.
  uint64_t MaxBytes = 0;   ///< Sum-of-entry-file-sizes cap.
};

/// Counters, cumulative since open().
struct VerdictCacheStats {
  uint64_t Lookups = 0;
  uint64_t MemoryHits = 0;
  uint64_t DiskHits = 0;
  uint64_t Misses = 0;
  uint64_t Stores = 0;
  uint64_t StaleInvalidated = 0;  ///< Version-fingerprint mismatches GC'd.
  uint64_t PoisonedRejected = 0;  ///< Corrupt entries refused (and GC'd).
  uint64_t Evictions = 0;         ///< Capacity (LRU) evictions, including
                                  ///< the over-cap sweep at open().

  uint64_t hits() const { return MemoryHits + DiskHits; }
};

/// A persistent verdict store rooted at one directory. Open once per
/// daemon; safe for concurrent lookup/store from many threads.
class VerdictCache {
public:
  /// Opens (creating if needed) the cache directory \p Dir for the
  /// current \p VersionFingerprint (defaulted via
  /// analyzerVerdictFingerprint(); tests inject synthetic values to
  /// exercise invalidation). Refuses a directory whose manifest is not a
  /// verdict-cache manifest. Sweeps orphaned temp files, then (when
  /// \p Limits caps anything) sweeps over-cap entries oldest-mtime-first.
  /// Returned by pointer: the cache pins a mutex shared with worker
  /// threads, so it never moves.
  static std::unique_ptr<VerdictCache> open(const std::string &Dir,
                                            std::string &Error);
  static std::unique_ptr<VerdictCache> open(const std::string &Dir,
                                            uint64_t VersionFingerprint,
                                            std::string &Error);
  static std::unique_ptr<VerdictCache> open(const std::string &Dir,
                                            uint64_t VersionFingerprint,
                                            const VerdictCacheLimits &Limits,
                                            std::string &Error);

  VerdictCache(const VerdictCache &) = delete;
  VerdictCache &operator=(const VerdictCache &) = delete;

  /// Returns the cached verdict for \p Request, or nullopt on miss.
  /// Never returns a verdict for a different request or fingerprint.
  std::optional<VerifyResult> lookup(const VerifyRequest &Request);

  /// Durably records \p Result as \p Request's verdict under the current
  /// version fingerprint. KeepStates tables are never persisted (the
  /// wire verdict fields only). False with \p Error on I/O failure; the
  /// in-memory entry is installed regardless so a read-only filesystem
  /// degrades to a per-process cache. A successful store then evicts
  /// least-recently-used entries as needed to stay under the caps.
  bool store(const VerifyRequest &Request, const VerifyResult &Result,
             std::string &Error);

  VerdictCacheStats stats() const;

  const std::string &path() const { return Dir; }
  uint64_t versionFingerprint() const { return VersionFp; }
  const VerdictCacheLimits &limits() const { return Limits; }

private:
  VerdictCache(std::string DirV, uint64_t VersionFpV,
               VerdictCacheLimits LimitsV)
      : Dir(std::move(DirV)), VersionFp(VersionFpV), Limits(LimitsV) {}

  std::string entryPath(uint64_t Key) const;

  /// Seeds the disk index from a directory scan (recency = file mtime,
  /// oldest first) and applies the over-cap sweep. Called once by open().
  void loadDiskIndex();

  /// Records (or re-measures) \p Key's on-disk entry of \p Bytes bytes
  /// and marks it most recently used.
  void indexDiskEntryLocked(uint64_t Key, uint64_t Bytes);
  /// Marks \p Key most recently used if it is tracked.
  void touchDiskEntryLocked(uint64_t Key);
  /// Drops \p Key from the disk index (stale/poison GC or external
  /// disappearance -- NOT counted as an eviction).
  void forgetDiskEntryLocked(uint64_t Key);
  /// Evicts least-recently-used entries (unlink + in-memory mirror) until
  /// the cache is under both caps; each one counts in Stats.Evictions.
  void evictOverCapLocked();

  struct MemEntry {
    std::string Canonical; ///< Exact-match witness.
    VerifyResult Result;
  };

  /// One tracked on-disk entry; recency lives in the Lru list.
  struct DiskEntry {
    uint64_t Bytes;
    std::list<uint64_t>::iterator LruPos;
  };

  std::string Dir;
  uint64_t VersionFp;
  VerdictCacheLimits Limits;

  // Shared state behind one mutex: lookups are a hash-map probe plus (on
  // cold keys) one file read; the analyzer work they replace is orders
  // of magnitude heavier, so a single lock is nowhere near contention.
  mutable std::mutex Mutex;
  std::unordered_map<uint64_t, MemEntry> Memory;
  std::unordered_map<uint64_t, DiskEntry> Disk;
  std::list<uint64_t> Lru; ///< Front = least recently used.
  uint64_t DiskBytes = 0;  ///< Sum of tracked entry-file sizes.
  VerdictCacheStats Stats;
};

} // namespace service
} // namespace tnums

#endif // TNUMS_SERVICE_VERDICTCACHE_H
