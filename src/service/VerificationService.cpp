//===- service/VerificationService.cpp - Batched BPF verification ---------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "service/VerificationService.h"

#include "support/Atomic.h"
#include "support/Checkpoint.h"
#include "support/ChunkSchedule.h"
#include "support/Table.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <unordered_map>

using namespace tnums;
using namespace tnums::bpf;
using namespace tnums::service;

namespace {

//===----------------------------------------------------------------------===//
// Content-hash request dedup
//
// Two requests with identical canonicalized program bytes and identical
// verdict-relevant options necessarily produce identical verdicts (a
// verdict is a pure function of the request), so a batch only needs to
// analyze the first occurrence. Hash buckets are confirmed by exact
// field-wise comparison -- a collision degrades to a miss, never to a
// wrong verdict.
//===----------------------------------------------------------------------===//

/// Canonical digest of everything that can influence a verdict: the
/// per-instruction fields (field-wise, not memcpy, so struct padding
/// never leaks in) plus the context size and analyzer knobs.
uint64_t hashRequest(const VerifyRequest &Request) {
  Fnv1a Hash;
  Hash.mixU64(Request.MemSize);
  Hash.mixU64(Request.AnalyzerOpts.WideningThreshold);
  Hash.mixU64(Request.AnalyzerOpts.MaxInsnVisits);
  Hash.mixU64(Request.Prog.size());
  for (const Insn &I : Request.Prog) {
    Hash.mixU64(static_cast<uint64_t>(I.InsnKind));
    Hash.mixU64(static_cast<uint64_t>(I.Alu));
    Hash.mixU64(static_cast<uint64_t>(I.Cmp));
    Hash.mixU64(I.Dst);
    Hash.mixU64(I.Src);
    Hash.mixU64(I.UsesImm ? 1 : 0);
    Hash.mixU64(static_cast<uint64_t>(I.Imm));
    Hash.mixU64(static_cast<uint64_t>(static_cast<int64_t>(I.Offset)));
    Hash.mixU64(I.Size);
    Hash.mixU64(I.Is32 ? 1 : 0);
  }
  return Hash.digest();
}

bool sameInsn(const Insn &A, const Insn &B) {
  return A.InsnKind == B.InsnKind && A.Alu == B.Alu && A.Cmp == B.Cmp &&
         A.Dst == B.Dst && A.Src == B.Src && A.UsesImm == B.UsesImm &&
         A.Imm == B.Imm && A.Offset == B.Offset && A.Size == B.Size &&
         A.Is32 == B.Is32;
}

bool sameRequest(const VerifyRequest &A, const VerifyRequest &B) {
  if (A.MemSize != B.MemSize ||
      A.AnalyzerOpts.WideningThreshold != B.AnalyzerOpts.WideningThreshold ||
      A.AnalyzerOpts.MaxInsnVisits != B.AnalyzerOpts.MaxInsnVisits ||
      A.Prog.size() != B.Prog.size())
    return false;
  for (size_t I = 0; I != A.Prog.size(); ++I)
    if (!sameInsn(A.Prog.insn(I), B.Prog.insn(I)))
      return false;
  return true;
}

/// Representative[i] = index of the first request identical to
/// Requests[i] (== i for first occurrences, which are the ones actually
/// scheduled).
std::vector<size_t>
computeRepresentatives(const std::vector<VerifyRequest> &Requests) {
  std::vector<size_t> Representative(Requests.size());
  std::unordered_map<uint64_t, std::vector<size_t>> Buckets;
  Buckets.reserve(Requests.size());
  for (size_t Index = 0; Index != Requests.size(); ++Index) {
    std::vector<size_t> &Bucket = Buckets[hashRequest(Requests[Index])];
    size_t Found = Index;
    for (size_t Earlier : Bucket)
      if (sameRequest(Requests[Earlier], Requests[Index])) {
        Found = Earlier;
        break;
      }
    Representative[Index] = Found;
    if (Found == Index)
      Bucket.push_back(Index);
  }
  return Representative;
}

} // namespace

void tnums::service::verifyRequestInto(const VerifyRequest &Request,
                                       bool KeepStates, Analyzer &Engine,
                                       VerifyResult &Out) {
  Out.Done = true;
  if (std::optional<std::string> Error = Request.Prog.validate()) {
    Out.Accepted = false;
    Out.StructuralError = std::move(*Error);
    return;
  }
  Analyzer::Options Opts = Request.AnalyzerOpts;
  Opts.MemSize = Request.MemSize;
  AnalysisResult Result = Engine.analyze(Request.Prog, Opts);
  Out.Accepted = Result.accepted();
  Out.Violations = std::move(Result.Violations);
  Out.InsnVisits = Result.InsnVisits;
  if (KeepStates)
    Out.InStates = std::move(Result.InStates);
}

std::string BatchStats::toString() const {
  return formatString(
      "%llu programs in %.3f s (%.0f programs/s, %.2f Minsn-visits/s): "
      "%llu accepted, %llu rejected structural, %llu rejected semantic, "
      "%llu dedup hits",
      static_cast<unsigned long long>(Programs), Seconds,
      programsPerSecond(), insnVisitsPerSecond() / 1e6,
      static_cast<unsigned long long>(Accepted),
      static_cast<unsigned long long>(RejectedStructural),
      static_cast<unsigned long long>(RejectedSemantic),
      static_cast<unsigned long long>(DedupHits));
}

uint64_t tnums::service::verdictFingerprint(const BatchResult &Batch) {
  uint64_t Hash = 1469598103934665603ull; // FNV-1a offset basis
  auto Mix = [&Hash](uint64_t Value) {
    for (unsigned Byte = 0; Byte != 8; ++Byte) {
      Hash ^= (Value >> (8 * Byte)) & 0xFF;
      Hash *= 1099511628211ull;
    }
  };
  auto MixString = [&Hash](const std::string &Text) {
    for (unsigned char C : Text) {
      Hash ^= C;
      Hash *= 1099511628211ull;
    }
    Hash ^= 0xFF; // Terminator so "ab" + "c" != "a" + "bc".
    Hash *= 1099511628211ull;
  };
  for (const VerifyResult &R : Batch.Results) {
    Mix(R.Done ? 1 : 0);
    if (!R.Done)
      continue;
    Mix(R.Accepted ? 1 : 0);
    Mix(R.InsnVisits);
    MixString(R.StructuralError);
    Mix(R.Violations.size());
    for (const Violation &V : R.Violations) {
      Mix(V.Pc);
      MixString(V.Message);
    }
  }
  return Hash;
}

VerifyResult
VerificationService::verifyOne(const VerifyRequest &Request) const {
  VerifyResult Result;
  Analyzer Engine;
  verifyRequestInto(Request, Config.KeepStates, Engine, Result);
  return Result;
}

BatchResult
VerificationService::verifyBatch(const std::vector<VerifyRequest> &Requests) const {
  BatchResult Batch;
  Batch.Results.resize(Requests.size());
  auto Start = std::chrono::steady_clock::now();

  // With dedup, only first occurrences are scheduled; duplicates inherit
  // their representative's verdict after the pool drains. Without it,
  // every index is its own representative and Unique is the identity.
  std::vector<size_t> Representative;
  std::vector<size_t> Unique;
  if (Config.DedupPrograms) {
    Representative = computeRepresentatives(Requests);
    Unique.reserve(Requests.size());
    for (size_t Index = 0; Index != Representative.size(); ++Index)
      if (Representative[Index] == Index)
        Unique.push_back(Index);
  } else {
    Unique.resize(Requests.size());
    for (size_t Index = 0; Index != Unique.size(); ++Index)
      Unique[Index] = Index;
  }

  const uint64_t Total = Unique.size();
  const uint64_t ChunkPrograms = std::max<uint64_t>(1, Config.ChunkPrograms);
  const uint64_t NumChunks = (Total + ChunkPrograms - 1) / ChunkPrograms;

  // Lowest chunk index containing a reject; only consulted in
  // StopAtFirstReject mode. Same protocol as the sweeps: cancel strictly
  // above, always finish at or below, so the first Done reject in index
  // order is exactly the serial-order first reject. (Dedup preserves
  // this: the unique stream keeps first-occurrence order, and every
  // duplicate both follows and matches its representative.)
  std::atomic<uint64_t> FirstRejectChunk{UINT64_MAX};

  forEachChunkOnPool(
      Config.NumThreads, NumChunks,
      // One engine per worker: its CFG storage and fixpoint scratch are
      // recycled across every program that worker processes.
      [] { return Analyzer(); },
      [&](uint64_t Chunk, Analyzer &Engine) {
        if (Config.StopAtFirstReject &&
            Chunk > FirstRejectChunk.load(std::memory_order_acquire))
          return;
        uint64_t Begin = Chunk * ChunkPrograms;
        uint64_t End = std::min(Total, Begin + ChunkPrograms);
        for (uint64_t Position = Begin; Position != End; ++Position) {
          if (Config.StopAtFirstReject &&
              Chunk > FirstRejectChunk.load(std::memory_order_relaxed))
            break;
          size_t Index = Unique[Position];
          VerifyResult &Out = Batch.Results[Index];
          verifyRequestInto(Requests[Index], Config.KeepStates, Engine, Out);
          if (!Out.Accepted && Config.StopAtFirstReject) {
            atomicMinU64(FirstRejectChunk, Chunk);
            break; // This chunk's first (= serial-order) reject stands.
          }
        }
      });

  if (Config.DedupPrograms)
    for (size_t Index = 0; Index != Representative.size(); ++Index) {
      size_t Rep = Representative[Index];
      if (Rep == Index || !Batch.Results[Rep].Done)
        continue;
      Batch.Results[Index] = Batch.Results[Rep];
      ++Batch.Stats.DedupHits;
    }

  std::chrono::duration<double> Elapsed =
      std::chrono::steady_clock::now() - Start;
  Batch.Stats.Seconds = Elapsed.count();
  for (size_t Index = 0; Index != Batch.Results.size(); ++Index) {
    const VerifyResult &R = Batch.Results[Index];
    if (!R.Done)
      continue;
    ++Batch.Stats.Programs;
    Batch.Stats.InsnVisits += R.InsnVisits;
    if (R.Accepted) {
      ++Batch.Stats.Accepted;
    } else {
      if (!R.StructuralError.empty())
        ++Batch.Stats.RejectedStructural;
      else
        ++Batch.Stats.RejectedSemantic;
      if (!Batch.FirstRejected)
        Batch.FirstRejected = Index;
    }
  }
  return Batch;
}
