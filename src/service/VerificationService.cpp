//===- service/VerificationService.cpp - Batched BPF verification ---------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "service/VerificationService.h"

#include "support/Atomic.h"
#include "support/ChunkSchedule.h"
#include "support/Table.h"

#include <algorithm>
#include <atomic>
#include <chrono>

using namespace tnums;
using namespace tnums::bpf;
using namespace tnums::service;

namespace {

/// Verifies one request into \p Out with a caller-owned (per-worker,
/// reused) analyzer engine.
void verifyInto(const VerifyRequest &Request, const ServiceConfig &Config,
                Analyzer &Engine, VerifyResult &Out) {
  Out.Done = true;
  if (std::optional<std::string> Error = Request.Prog.validate()) {
    Out.Accepted = false;
    Out.StructuralError = std::move(*Error);
    return;
  }
  Analyzer::Options Opts = Request.AnalyzerOpts;
  Opts.MemSize = Request.MemSize;
  AnalysisResult Result = Engine.analyze(Request.Prog, Opts);
  Out.Accepted = Result.accepted();
  Out.Violations = std::move(Result.Violations);
  Out.InsnVisits = Result.InsnVisits;
  if (Config.KeepStates)
    Out.InStates = std::move(Result.InStates);
}

} // namespace

std::string BatchStats::toString() const {
  return formatString(
      "%llu programs in %.3f s (%.0f programs/s, %.2f Minsn-visits/s): "
      "%llu accepted, %llu rejected structural, %llu rejected semantic",
      static_cast<unsigned long long>(Programs), Seconds,
      programsPerSecond(), insnVisitsPerSecond() / 1e6,
      static_cast<unsigned long long>(Accepted),
      static_cast<unsigned long long>(RejectedStructural),
      static_cast<unsigned long long>(RejectedSemantic));
}

uint64_t tnums::service::verdictFingerprint(const BatchResult &Batch) {
  uint64_t Hash = 1469598103934665603ull; // FNV-1a offset basis
  auto Mix = [&Hash](uint64_t Value) {
    for (unsigned Byte = 0; Byte != 8; ++Byte) {
      Hash ^= (Value >> (8 * Byte)) & 0xFF;
      Hash *= 1099511628211ull;
    }
  };
  auto MixString = [&Hash](const std::string &Text) {
    for (unsigned char C : Text) {
      Hash ^= C;
      Hash *= 1099511628211ull;
    }
    Hash ^= 0xFF; // Terminator so "ab" + "c" != "a" + "bc".
    Hash *= 1099511628211ull;
  };
  for (const VerifyResult &R : Batch.Results) {
    Mix(R.Done ? 1 : 0);
    if (!R.Done)
      continue;
    Mix(R.Accepted ? 1 : 0);
    Mix(R.InsnVisits);
    MixString(R.StructuralError);
    Mix(R.Violations.size());
    for (const Violation &V : R.Violations) {
      Mix(V.Pc);
      MixString(V.Message);
    }
  }
  return Hash;
}

VerifyResult
VerificationService::verifyOne(const VerifyRequest &Request) const {
  VerifyResult Result;
  Analyzer Engine;
  verifyInto(Request, Config, Engine, Result);
  return Result;
}

BatchResult
VerificationService::verifyBatch(const std::vector<VerifyRequest> &Requests) const {
  BatchResult Batch;
  Batch.Results.resize(Requests.size());
  auto Start = std::chrono::steady_clock::now();

  const uint64_t Total = Requests.size();
  const uint64_t ChunkPrograms = std::max<uint64_t>(1, Config.ChunkPrograms);
  const uint64_t NumChunks = (Total + ChunkPrograms - 1) / ChunkPrograms;

  // Lowest chunk index containing a reject; only consulted in
  // StopAtFirstReject mode. Same protocol as the sweeps: cancel strictly
  // above, always finish at or below, so the first Done reject in index
  // order is exactly the serial-order first reject.
  std::atomic<uint64_t> FirstRejectChunk{UINT64_MAX};

  forEachChunkOnPool(
      Config.NumThreads, NumChunks,
      // One engine per worker: its CFG storage and fixpoint scratch are
      // recycled across every program that worker processes.
      [] { return Analyzer(); },
      [&](uint64_t Chunk, Analyzer &Engine) {
        if (Config.StopAtFirstReject &&
            Chunk > FirstRejectChunk.load(std::memory_order_acquire))
          return;
        uint64_t Begin = Chunk * ChunkPrograms;
        uint64_t End = std::min(Total, Begin + ChunkPrograms);
        for (uint64_t Index = Begin; Index != End; ++Index) {
          if (Config.StopAtFirstReject &&
              Chunk > FirstRejectChunk.load(std::memory_order_relaxed))
            break;
          VerifyResult &Out = Batch.Results[Index];
          verifyInto(Requests[Index], Config, Engine, Out);
          if (!Out.Accepted && Config.StopAtFirstReject) {
            atomicMinU64(FirstRejectChunk, Chunk);
            break; // This chunk's first (= serial-order) reject stands.
          }
        }
      });

  std::chrono::duration<double> Elapsed =
      std::chrono::steady_clock::now() - Start;
  Batch.Stats.Seconds = Elapsed.count();
  for (size_t Index = 0; Index != Batch.Results.size(); ++Index) {
    const VerifyResult &R = Batch.Results[Index];
    if (!R.Done)
      continue;
    ++Batch.Stats.Programs;
    Batch.Stats.InsnVisits += R.InsnVisits;
    if (R.Accepted) {
      ++Batch.Stats.Accepted;
    } else {
      if (!R.StructuralError.empty())
        ++Batch.Stats.RejectedStructural;
      else
        ++Batch.Stats.RejectedSemantic;
      if (!Batch.FirstRejected)
        Batch.FirstRejected = Index;
    }
  }
  return Batch;
}
