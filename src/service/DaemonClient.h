//===- service/DaemonClient.h - Blocking tnumsd client ----------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the tnumsd protocol (service/Daemon.h): connect,
/// Hello, then submit programs and read verdicts. Two usage shapes:
///
///  * Synchronous: submit() writes one Submit and blocks for its reply --
///    the simple path for tests and tools.
///  * Pipelined: submitAsync() queues any number of Submits, readReply()
///    drains replies in order; the bench uses this to keep the daemon's
///    admission window full. Replies carry the echoed request id, so a
///    client can always match them up.
///
/// submitWithRetry() additionally absorbs Busy backpressure (bounded
/// retry with a small sleep), which is what a well-behaved production
/// client does when the daemon refuses admission.
///
/// All methods are blocking and this class is NOT thread-safe: one client
/// per thread (the daemon, of course, serves many clients at once).
/// Errors follow the repo convention -- bool plus an Error out-string,
/// nothing throws.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_SERVICE_DAEMONCLIENT_H
#define TNUMS_SERVICE_DAEMONCLIENT_H

#include "service/WireProtocol.h"
#include "support/Socket.h"

#include <cstdint>
#include <optional>
#include <string>

namespace tnums {
namespace service {

/// One daemon reply, whichever type arrived. Exactly one of the payload
/// members matching Type is meaningful.
struct ClientReply {
  MsgType Type = MsgType::Error;
  uint64_t RequestId = 0;
  VerdictMsg Verdict;
  BusyMsg Busy;
  ErrorMsg Err;
  StatsReplyMsg Stats;
  MetricsReplyMsg Metrics;
};

class DaemonClient {
public:
  /// Connects over the UNIX socket at \p Path (retrying for up to
  /// \p TimeoutMs to absorb the daemon-startup race) and performs the
  /// Hello handshake as \p Tenant.
  static std::optional<DaemonClient> connectUnixSocket(const std::string &Path,
                                                       const std::string &Tenant,
                                                       unsigned TimeoutMs,
                                                       std::string &Error);

  /// Connects over loopback TCP and performs the Hello handshake.
  static std::optional<DaemonClient> connectTcp(uint16_t Port,
                                                const std::string &Tenant,
                                                std::string &Error);

  /// The HelloAck the daemon answered with (version fingerprint, limits).
  const HelloAckMsg &serverHello() const { return Ack; }

  /// Writes one Submit and blocks for its reply (Verdict, Busy, or
  /// Error). False with \p Error only on transport failure -- a Busy or
  /// Error *reply* is a successful round trip.
  bool submit(const VerifyRequest &Request, uint8_t Priority,
              ClientReply &Reply, std::string &Error);

  /// Pipelined submission: writes the Submit and returns its request id
  /// without waiting. Pair with readReply().
  bool submitAsync(const VerifyRequest &Request, uint8_t Priority,
                   uint64_t &RequestId, std::string &Error);

  /// Blocks for the next reply frame of any type.
  bool readReply(ClientReply &Reply, std::string &Error);

  /// submit() that retries Busy replies (1 ms sleep, bounded by
  /// \p TimeoutMs) until a Verdict arrives. False on transport failure,
  /// an Error reply, or timeout.
  bool submitWithRetry(const VerifyRequest &Request, uint8_t Priority,
                       unsigned TimeoutMs, VerdictMsg &Verdict,
                       std::string &Error);

  /// Round-trips a StatsQuery.
  bool queryStats(StatsReplyMsg &Stats, std::string &Error);

  /// Round-trips a MetricsQuery (full snapshot + build info).
  bool queryMetrics(MetricsReplyMsg &Metrics, std::string &Error);

  /// Sends Shutdown and waits for the ShutdownAck.
  bool shutdownServer(std::string &Error);

private:
  DaemonClient(OwnedFd FdV) : Fd(std::move(FdV)) {}

  bool handshake(const std::string &Tenant, std::string &Error);
  bool writeFrame(MsgType Type, uint64_t RequestId,
                  const std::string &Payload, std::string &Error);
  bool readFrame(Frame &Out, std::string &Error);

  OwnedFd Fd;
  HelloAckMsg Ack;
  uint64_t NextRequestId = 1;
};

} // namespace service
} // namespace tnums

#endif // TNUMS_SERVICE_DAEMONCLIENT_H
