//===- service/Corpus.cpp - Request corpus save/load ----------------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "service/Corpus.h"

#include "service/WireProtocol.h"
#include "support/Table.h"

#include <cstdio>

using namespace tnums;
using namespace tnums::service;

namespace {

constexpr const char *HeaderLine = "tnums-corpus v1";

char hexDigit(unsigned Nibble) {
  return Nibble < 10 ? static_cast<char>('0' + Nibble)
                     : static_cast<char>('a' + (Nibble - 10));
}

int hexValue(char C) {
  if (C >= '0' && C <= '9')
    return C - '0';
  if (C >= 'a' && C <= 'f')
    return C - 'a' + 10;
  if (C >= 'A' && C <= 'F')
    return C - 'A' + 10;
  return -1;
}

std::string diag(const std::string &Name, size_t Line, const std::string &Why) {
  return formatString("%s:%zu: %s", Name.c_str(), Line, Why.c_str());
}

} // namespace

std::string
tnums::service::encodeCorpusText(const std::vector<VerifyRequest> &Requests) {
  std::string Text = HeaderLine;
  Text += '\n';
  for (const VerifyRequest &Request : Requests) {
    std::string Bytes = encodeRequestCanonical(Request);
    for (char C : Bytes) {
      uint8_t B = static_cast<uint8_t>(C);
      Text += hexDigit(B >> 4);
      Text += hexDigit(B & 0xF);
    }
    Text += '\n';
  }
  return Text;
}

std::optional<std::vector<VerifyRequest>>
tnums::service::parseCorpusText(const std::string &Text,
                                const std::string &Name, std::string &Error) {
  std::vector<VerifyRequest> Requests;
  size_t Pos = 0, LineNo = 0;
  bool SawHeader = false;
  while (Pos <= Text.size()) {
    size_t End = Text.find('\n', Pos);
    bool Last = End == std::string::npos;
    std::string Line = Text.substr(Pos, Last ? std::string::npos : End - Pos);
    Pos = Last ? Text.size() + 1 : End + 1;
    ++LineNo;
    if (Last && Line.empty())
      break; // No trailing newline after the final line is fine.
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back(); // Tolerate CRLF corpora.

    if (!SawHeader) {
      if (Line != HeaderLine) {
        Error = diag(Name, LineNo,
                     formatString("expected header \"%s\"", HeaderLine));
        return std::nullopt;
      }
      SawHeader = true;
      continue;
    }
    if (Line.empty() || Line[0] == '#')
      continue;

    if (Line.size() % 2 != 0) {
      Error = diag(Name, LineNo, "odd-length hex entry");
      return std::nullopt;
    }
    std::string Bytes;
    Bytes.reserve(Line.size() / 2);
    for (size_t C = 0; C != Line.size(); C += 2) {
      int Hi = hexValue(Line[C]), Lo = hexValue(Line[C + 1]);
      if (Hi < 0 || Lo < 0) {
        Error = diag(Name, LineNo,
                     formatString("invalid hex character '%c'",
                                  Hi < 0 ? Line[C] : Line[C + 1]));
        return std::nullopt;
      }
      Bytes += static_cast<char>((Hi << 4) | Lo);
    }

    std::string DecodeError;
    std::optional<VerifyRequest> Request =
        decodeRequestCanonical(Bytes, DecodeError);
    if (!Request) {
      Error = diag(Name, LineNo, "undecodable entry: " + DecodeError);
      return std::nullopt;
    }
    if (std::optional<std::string> Invalid = Request->Prog.validate()) {
      Error = diag(Name, LineNo, "invalid program: " + *Invalid);
      return std::nullopt;
    }
    Requests.push_back(std::move(*Request));
  }
  if (!SawHeader) {
    Error = diag(Name, 1, formatString("expected header \"%s\"", HeaderLine));
    return std::nullopt;
  }
  return Requests;
}

bool tnums::service::saveCorpus(const std::string &Path,
                                const std::vector<VerifyRequest> &Requests,
                                std::string &Error) {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File) {
    Error = formatString("cannot open %s for writing", Path.c_str());
    return false;
  }
  std::string Text = encodeCorpusText(Requests);
  bool Ok = std::fwrite(Text.data(), 1, Text.size(), File) == Text.size();
  Ok &= std::fclose(File) == 0;
  if (!Ok)
    Error = formatString("short write to %s", Path.c_str());
  return Ok;
}

std::optional<std::vector<VerifyRequest>>
tnums::service::loadCorpus(const std::string &Path, std::string &Error) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    Error = formatString("cannot open %s", Path.c_str());
    return std::nullopt;
  }
  std::string Text;
  char Buffer[64 * 1024];
  size_t Got;
  while ((Got = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Text.append(Buffer, Got);
  bool ReadError = std::ferror(File) != 0;
  std::fclose(File);
  if (ReadError) {
    Error = formatString("read error on %s", Path.c_str());
    return std::nullopt;
  }
  return parseCorpusText(Text, Path, Error);
}
