//===- tnum/TnumMembers.cpp - Batched concretization enumeration ----------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "tnum/TnumMembers.h"

using namespace tnums;

MemberTable::MemberTable(const std::vector<Tnum> &Universe) {
  uint64_t Total = 0;
  for (const Tnum &T : Universe)
    Total += T.isBottom() ? 0 : uint64_t(1) << T.numUnknownBits();
  Flat.reserve(Total);
  Offsets.reserve(Universe.size() + 1);
  Offsets.push_back(0);
  for (const Tnum &T : Universe) {
    if (!T.isBottom()) {
      // The subset odometer, inlined: identical order to
      // materializeMembers / forEachMember.
      uint64_t Value = T.value();
      uint64_t Mask = T.mask();
      uint64_t Subset = 0;
      for (;;) {
        Flat.push_back(Value | Subset);
        if (Subset == Mask)
          break;
        Subset = (Subset - Mask) & Mask;
      }
    }
    Offsets.push_back(Flat.size());
  }
}

uint64_t tnums::memberTableBytes(unsigned Width) {
  // Sigma_{k} C(Width, k) 2^(Width-k) 2^k = 4^Width members; the offset
  // index adds 3^Width + 1 words on top, which the shift below dominates.
  return (uint64_t(1) << (2 * Width)) * sizeof(uint64_t);
}

void tnums::materializeMembers(const Tnum &P, std::vector<uint64_t> &Out) {
  Out.clear();
  if (P.isBottom())
    return;
  assert(P.numUnknownBits() <= 30 && "member materialization infeasible");
  Out.reserve(uint64_t(1) << P.numUnknownBits());
  uint64_t Value = P.value();
  uint64_t Mask = P.mask();
  uint64_t Subset = 0;
  for (;;) {
    Out.push_back(Value | Subset);
    if (Subset == Mask)
      break;
    Subset = (Subset - Mask) & Mask;
  }
}
