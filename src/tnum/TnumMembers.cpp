//===- tnum/TnumMembers.cpp - Batched concretization enumeration ----------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "tnum/TnumMembers.h"

using namespace tnums;

void tnums::materializeMembers(const Tnum &P, std::vector<uint64_t> &Out) {
  Out.clear();
  if (P.isBottom())
    return;
  assert(P.numUnknownBits() <= 30 && "member materialization infeasible");
  Out.reserve(uint64_t(1) << P.numUnknownBits());
  uint64_t Value = P.value();
  uint64_t Mask = P.mask();
  uint64_t Subset = 0;
  for (;;) {
    Out.push_back(Value | Subset);
    if (Subset == Mask)
      break;
    Subset = (Subset - Mask) & Mask;
  }
}
