//===- tnum/Tnum.cpp - Tristate numbers (the tnum abstract domain) --------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "tnum/Tnum.h"

#include "support/Table.h"

#include <bit>

using namespace tnums;

Tnum Tnum::makeRange(uint64_t Min, uint64_t Max) {
  assert(Min <= Max && "empty range");
  // Kernel tnum_range(): keep the bits shared by every value in [Min, Max]
  // (the common prefix above the highest bit where Min and Max differ) and
  // mark everything below as unknown.
  uint64_t Chi = Min ^ Max;
  unsigned Bits = MaxBitWidth - static_cast<unsigned>(std::countl_zero(Chi));
  if (Bits > 63)
    return makeUnknown();
  uint64_t Delta = (uint64_t(1) << Bits) - 1;
  return Tnum(Min & ~Delta, Delta);
}

std::optional<Tnum> Tnum::parse(const std::string &Text) {
  if (Text.empty() || Text.size() > MaxBitWidth)
    return std::nullopt;
  uint64_t Value = 0;
  uint64_t Mask = 0;
  for (char C : Text) {
    Value <<= 1;
    Mask <<= 1;
    switch (C) {
    case '0':
      break;
    case '1':
      Value |= 1;
      break;
    case 'u':
    case 'U':
    case 'x':
    case 'X':
      Mask |= 1;
      break;
    default:
      return std::nullopt;
    }
  }
  return Tnum(Value, Mask);
}

uint64_t Tnum::concretizationSize() const {
  if (isBottom())
    return 0;
  unsigned UnknownBits = numUnknownBits();
  if (UnknownBits >= MaxBitWidth)
    return ~uint64_t(0); // Saturate: the true size 2^64 is unrepresentable.
  return uint64_t(1) << UnknownBits;
}

bool Tnum::isSubsetOf(const Tnum &Q) const {
  if (isBottom())
    return true;
  if (Q.isBottom())
    return false;
  // Eqn. 2: every trit known in Q must be known with the same value in P,
  // and every unknown trit of P must be unknown in Q.
  if ((Mask & ~Q.Mask) != 0)
    return false;
  return ((Value ^ Q.Value) & ~Q.Mask) == 0;
}

Tnum Tnum::joinWith(const Tnum &Q) const {
  if (isBottom())
    return Q.isBottom() ? makeBottom() : Q;
  if (Q.isBottom())
    return *this;
  // A trit stays known only if both sides know it and agree on it.
  uint64_t NewMask = Mask | Q.Mask | (Value ^ Q.Value);
  return Tnum(Value & ~NewMask, NewMask);
}

Tnum Tnum::meetWith(const Tnum &Q) const {
  if (isBottom() || Q.isBottom())
    return makeBottom();
  // A contradiction (some bit known 0 on one side and known 1 on the other)
  // makes the intersection empty.
  if (((Value ^ Q.Value) & ~Mask & ~Q.Mask) != 0)
    return makeBottom();
  uint64_t NewValue = Value | Q.Value;
  uint64_t NewMask = Mask & Q.Mask;
  return Tnum(NewValue & ~NewMask, NewMask);
}

std::string Tnum::toString(unsigned Width, char UnknownChar) const {
  assert(Width >= 1 && Width <= MaxBitWidth && "width out of range");
  if (isBottom())
    return "<bottom>";
  std::string Text;
  Text.reserve(Width);
  for (unsigned I = Width; I != 0; --I) {
    switch (tritAt(I - 1)) {
    case Trit::Zero:
      Text += '0';
      break;
    case Trit::One:
      Text += '1';
      break;
    case Trit::Unknown:
      Text += UnknownChar;
      break;
    }
  }
  return Text;
}

std::string Tnum::toVmString() const {
  return formatString("(v=0x%016llx, m=0x%016llx)",
                      static_cast<unsigned long long>(Value),
                      static_cast<unsigned long long>(Mask));
}
