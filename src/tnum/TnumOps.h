//===- tnum/TnumOps.h - Tnum transfer functions -----------------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract transfer functions over tnums for every non-multiplication BPF
/// ALU operation (multiplication variants have their own header,
/// TnumMul.h). Addition and subtraction are the kernel's O(1) algorithms
/// (paper Listings 1 and 6), proved sound and *optimal* in §III-B. The
/// bitwise operators follow Miné's optimal bitfield-domain operators as
/// implemented in the kernel. Division and modulo have no precise abstract
/// operator in the kernel; as in the paper (§II-B) they conservatively
/// return all-unknown unless both operands are constants.
///
/// The O(1) operators are defined inline: like the kernel's tnum.c, each
/// is a handful of machine instructions, and the multiplication algorithms
/// invoke them per loop iteration -- a call boundary here would dominate
/// the Figure 5 cycle measurements.
///
/// All functions require well-formed (non-bottom) inputs -- the analyzer
/// layer (domain/RegValue.h) filters bottom before calling transfer
/// functions -- and operate on the full 64-bit carrier. Width-n semantics
/// (n < 64) are obtained by keeping operands within the width (see
/// Tnum::fitsWidth) and truncating results with tnumTruncate(); carries
/// propagate only upward, so 64-bit-op-then-truncate equals the native
/// n-bit operation for add, sub, and mul.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_TNUM_TNUMOPS_H
#define TNUMS_TNUM_TNUMOPS_H

#include "tnum/Tnum.h"

namespace tnums {

/// Kernel tnum_add (paper Listing 1). Sound and optimal for any width
/// (Theorem 6); runs in O(1) machine operations.
inline Tnum tnumAdd(Tnum P, Tnum Q) {
  assert(P.isWellFormed() && Q.isWellFormed() && "transfer function on ⊥");
  // Sv is the minimum-carry addition (Lemma 2), Sigma the maximum-carry
  // addition (Lemma 3); their xor marks exactly the carry positions that
  // vary across concrete additions (Lemmas 4 and 5).
  uint64_t Sm = P.mask() + Q.mask();
  uint64_t Sv = P.value() + Q.value();
  uint64_t Sigma = Sm + Sv;
  uint64_t Chi = Sigma ^ Sv;
  uint64_t Mu = Chi | P.mask() | Q.mask();
  return Tnum(Sv & ~Mu, Mu);
}

/// Kernel tnum_sub (paper Listing 6). Sound and optimal (Theorem 22).
inline Tnum tnumSub(Tnum P, Tnum Q) {
  assert(P.isWellFormed() && Q.isWellFormed() && "transfer function on ⊥");
  // Alpha is the minimum-borrow subtraction (Lemma 24), Beta the
  // maximum-borrow subtraction (Lemma 25).
  uint64_t Dv = P.value() - Q.value();
  uint64_t Alpha = Dv + P.mask();
  uint64_t Beta = Dv - Q.mask();
  uint64_t Chi = Alpha ^ Beta;
  uint64_t Mu = Chi | P.mask() | Q.mask();
  return Tnum(Dv & ~Mu, Mu);
}

/// Negation, defined as 0 - P.
inline Tnum tnumNeg(Tnum P) { return tnumSub(Tnum::makeConstant(0), P); }

/// Optimal bitwise AND.
inline Tnum tnumAnd(Tnum P, Tnum Q) {
  assert(P.isWellFormed() && Q.isWellFormed() && "transfer function on ⊥");
  // A result bit can be 1 only where both operands may be 1; it is known
  // wherever it is certainly 0 (either side known 0) or certainly 1 (both
  // sides known 1).
  uint64_t Alpha = P.value() | P.mask();
  uint64_t Beta = Q.value() | Q.mask();
  uint64_t V = P.value() & Q.value();
  return Tnum(V, Alpha & Beta & ~V);
}

/// Optimal bitwise OR.
inline Tnum tnumOr(Tnum P, Tnum Q) {
  assert(P.isWellFormed() && Q.isWellFormed() && "transfer function on ⊥");
  uint64_t V = P.value() | Q.value();
  uint64_t Mu = P.mask() | Q.mask();
  return Tnum(V, Mu & ~V);
}

/// Optimal bitwise XOR.
inline Tnum tnumXor(Tnum P, Tnum Q) {
  assert(P.isWellFormed() && Q.isWellFormed() && "transfer function on ⊥");
  uint64_t V = P.value() ^ Q.value();
  uint64_t Mu = P.mask() | Q.mask();
  return Tnum(V & ~Mu, Mu);
}

/// Logical left shift by a known amount. \p Shift must be < 64. The result
/// is not truncated; callers doing width-n arithmetic follow with
/// tnumTruncate().
inline Tnum tnumLshift(Tnum P, unsigned Shift) {
  assert(P.isWellFormed() && "transfer function on ⊥");
  assert(Shift < MaxBitWidth && "shift amount out of range");
  return Tnum(P.value() << Shift, P.mask() << Shift);
}

/// Logical right shift by a known amount. \p Shift must be < 64.
inline Tnum tnumRshift(Tnum P, unsigned Shift) {
  assert(P.isWellFormed() && "transfer function on ⊥");
  assert(Shift < MaxBitWidth && "shift amount out of range");
  return Tnum(P.value() >> Shift, P.mask() >> Shift);
}

/// Truncation to the low \p Width bits (generalizes kernel tnum_cast from
/// byte granularity to bit granularity).
inline Tnum tnumTruncate(Tnum P, unsigned Width) {
  assert(P.isWellFormed() && "transfer function on ⊥");
  return Tnum(truncateToWidth(P.value(), Width),
              truncateToWidth(P.mask(), Width));
}

/// Arithmetic right shift by a known amount at bit width \p Width: the
/// width-local sign trit is replicated. Requires P.fitsWidth(Width) and
/// Shift < Width. Matches kernel tnum_arshift generalized from the 32/64
/// special cases to any width.
Tnum tnumArshift(Tnum P, unsigned Shift, unsigned Width);

/// Kernel tnum_cast: truncation to \p Bytes * 8 bits. \p Bytes in [1, 8].
Tnum tnumCast(Tnum P, unsigned Bytes);

/// Unsigned division at width \p Width. Exact when both operands are
/// constants (using the BPF convention x / 0 == 0); otherwise returns
/// all-unknown at the width, as the kernel verifier does.
Tnum tnumDiv(Tnum P, Tnum Q, unsigned Width = MaxBitWidth);

/// Unsigned modulo at width \p Width. Exact when both operands are
/// constants (BPF convention x % 0 == x); otherwise all-unknown.
Tnum tnumMod(Tnum P, Tnum Q, unsigned Width = MaxBitWidth);

/// Left shift by an *abstract* amount at width \p Width (a power of two up
/// to 64): the BPF semantics mask the amount to Width - 1, and the result
/// is the join over every feasible masked amount. Sound, and exact-join
/// precise (at most Width joins).
Tnum tnumLshiftByTnum(Tnum P, Tnum Amount, unsigned Width);

/// Logical right shift by an abstract amount; same conventions as
/// tnumLshiftByTnum.
Tnum tnumRshiftByTnum(Tnum P, Tnum Amount, unsigned Width);

/// Arithmetic right shift by an abstract amount; same conventions as
/// tnumLshiftByTnum.
Tnum tnumArshiftByTnum(Tnum P, Tnum Amount, unsigned Width);

//===----------------------------------------------------------------------===//
// Ripple-carry baselines (Regehr & Duongsaa). The paper's §II positions
// the kernel's O(1) add/sub against the only prior arithmetic operators
// in this domain, which ripple a trit-valued carry/borrow through the
// bits in O(n). They are sound; bench/ripple_vs_kernel_add quantifies the
// "much slower" claim and the precision relationship.
//===----------------------------------------------------------------------===//

/// Regehr & Duongsaa-style abstract addition: a trit-level full adder
/// rippled across \p Width bits. O(Width).
Tnum rippleAdd(Tnum P, Tnum Q, unsigned Width = MaxBitWidth);

/// Trit-level full-subtractor ripple, the subtraction counterpart.
Tnum rippleSub(Tnum P, Tnum Q, unsigned Width = MaxBitWidth);

//===----------------------------------------------------------------------===//
// Subregister helpers (kernel tnum.h): BPF ALU32 instructions operate on
// the low 32 bits of a register and zero-extend the result, so the
// verifier constantly splits and re-joins tnums at the 32-bit boundary.
//===----------------------------------------------------------------------===//

/// The low 32 bits of \p P (kernel tnum_subreg).
inline Tnum tnumSubreg(Tnum P) { return tnumTruncate(P, 32); }

/// \p P with its low 32 bits forced to known zero (kernel
/// tnum_clear_subreg).
inline Tnum tnumClearSubreg(Tnum P) {
  assert(P.isWellFormed() && "transfer function on ⊥");
  return tnumLshift(tnumRshift(P, 32), 32);
}

/// \p Reg with its low 32 bits replaced by \p Subreg's low 32 bits (kernel
/// tnum_with_subreg). \p Subreg must fit 32 bits.
inline Tnum tnumWithSubreg(Tnum Reg, Tnum Subreg) {
  assert(Subreg.fitsWidth(32) && "subreg wider than 32 bits");
  return tnumOr(tnumClearSubreg(Reg), Subreg);
}

/// \p Reg with its low 32 bits replaced by the constant \p Value (kernel
/// tnum_const_subreg).
inline Tnum tnumConstSubreg(Tnum Reg, uint32_t Value) {
  return tnumWithSubreg(Reg, Tnum::makeConstant(Value));
}

/// True if every member of gamma(\p P) is aligned to \p Size bytes, a
/// power of two (kernel tnum_is_aligned: no possibly-set bit below the
/// alignment). Size 0 counts as aligned, matching the kernel.
inline bool tnumIsAligned(Tnum P, uint64_t Size) {
  assert(P.isWellFormed() && "alignment query on ⊥");
  if (Size == 0)
    return true;
  assert((Size & (Size - 1)) == 0 && "alignment must be a power of two");
  return ((P.value() | P.mask()) & (Size - 1)) == 0;
}

//===----------------------------------------------------------------------===//
// Implementation version tags. The whole reason this codebase exists is
// that transfer functions EVOLVE (the paper was written because the
// kernel's mul algorithm changed), so every operator implementation
// carries a content-version tag the verification campaigns key cached
// results on: a checkpointed cell is reusable exactly while the tag of
// the operator it verified is unchanged. MUST be bumped in TnumOps.cpp
// whenever the corresponding algorithm's input/output behavior changes
// (a pure refactor keeps the tag); stale tags silently serve outdated
// verdicts from checkpoint stores. Multiplication algorithms have their
// own per-algorithm tags (mulAlgorithmVersion, TnumMul.h).
//===----------------------------------------------------------------------===//

/// Version tags of the non-multiplication transfer functions, one string
/// per distinct algorithm (shift-by-tnum operators share the join-over-
/// amounts skeleton but are tagged separately: each can change alone).
struct TnumOpVersions {
  const char *Add;
  const char *Sub;
  const char *And;
  const char *Or;
  const char *Xor;
  const char *Div;
  const char *Mod;
  const char *Lshift;
  const char *Rshift;
  const char *Arshift;
};

/// The current tags (constants in TnumOps.cpp, next to the out-of-line
/// operator definitions).
const TnumOpVersions &tnumOpVersions();

} // namespace tnums

#endif // TNUMS_TNUM_TNUMOPS_H
