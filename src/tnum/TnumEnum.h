//===- tnum/TnumEnum.h - Enumerating tnums and their members ----*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exhaustive enumeration of the abstract and concrete domains at small
/// widths: all 3^n well-formed width-n tnums, all 2^popcount(m) members of
/// a concretization, and the abstraction function alpha over explicit sets.
/// These drive the paper's exhaustive experiments (Fig. 4, Table I) and the
/// bounded verification engine (§III-A substitute).
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_TNUM_TNUMENUM_H
#define TNUMS_TNUM_TNUMENUM_H

#include "tnum/Tnum.h"

#include <cstdint>
#include <vector>

namespace tnums {

/// 3^Width: the number of well-formed width-n tnums (excluding bottom).
uint64_t numWellFormedTnums(unsigned Width);

/// Materializes all well-formed width-\p Width tnums. Ordered by mask, then
/// value (deterministic). Feasible for Width <= ~16 (3^16 ~= 43 M); the
/// paper's exhaustive experiments use Width <= 10.
std::vector<Tnum> allWellFormedTnums(unsigned Width);

/// Invokes \p Fn(uint64_t) for every member of gamma(\p P), in increasing
/// numeric order of the unknown-bit subset. Visits nothing for bottom.
/// The member count is 2^popcount(mask); keep widths small.
template <typename FnT> void forEachMember(const Tnum &P, FnT &&Fn) {
  if (P.isBottom())
    return;
  uint64_t Mask = P.mask();
  uint64_t Subset = 0;
  // Standard subset-odometer: enumerate all subsets of Mask.
  for (;;) {
    Fn(P.value() | Subset);
    if (Subset == Mask)
      break;
    Subset = (Subset - Mask) & Mask; // Next subset: (Subset + 1) within Mask.
  }
}

/// Materializes gamma(\p P) as a vector (2^popcount(mask) entries).
std::vector<uint64_t> allMembers(const Tnum &P);

/// The abstraction function alpha (Eqn. 5) over an explicit concrete set:
/// (AND of all values, AND xor OR). An empty set abstracts to bottom.
Tnum abstractOf(const std::vector<uint64_t> &Values);

/// Incremental form of abstractOf for streaming concrete outputs: start
/// from bottom, fold each value in. Equivalent to joining constants.
Tnum abstractInsert(Tnum Acc, uint64_t Value);

/// Invokes \p Fn(Tnum) for every well-formed tnum Q with Q ⊑A \p P: each
/// unknown trit of P independently becomes 0, 1, or µ (3^popcount(mask)
/// visits, so keep the mask small). Drives the monotonicity checker.
template <typename FnT> void forEachSubTnum(const Tnum &P, FnT &&Fn) {
  if (P.isBottom())
    return;
  unsigned Positions[MaxBitWidth];
  unsigned NumUnknown = 0;
  for (unsigned I = 0; I != MaxBitWidth; ++I)
    if (bitAt(P.mask(), I))
      Positions[NumUnknown++] = I;
  assert(NumUnknown <= 20 && "sub-tnum enumeration infeasible");
  // Odometer over {known-0, known-1, unknown} per unknown position.
  uint8_t Choice[MaxBitWidth] = {};
  for (;;) {
    uint64_t Value = P.value();
    uint64_t Mask = 0;
    for (unsigned I = 0; I != NumUnknown; ++I) {
      uint64_t Bit = uint64_t(1) << Positions[I];
      if (Choice[I] == 1)
        Value |= Bit;
      else if (Choice[I] == 2)
        Mask |= Bit;
    }
    Fn(Tnum(Value, Mask));
    unsigned Digit = 0;
    while (Digit != NumUnknown && Choice[Digit] == 2)
      Choice[Digit++] = 0;
    if (Digit == NumUnknown)
      break;
    ++Choice[Digit];
  }
}

} // namespace tnums

#endif // TNUMS_TNUM_TNUMENUM_H
