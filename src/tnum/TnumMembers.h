//===- tnum/TnumMembers.h - Batched concretization enumeration --*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Batch-oriented enumeration of gamma(P) for the SIMD membership kernels
/// (support/SimdBatch.h). forEachMember (TnumEnum.h) hands members to a
/// callback one at a time; the batched sweeps instead want whole chunks of
/// the concretization materialized into aligned buffers they can run the
/// 64-lane kernels over. Both interfaces visit members in the SAME order
/// -- the subset odometer over the mask, increasing -- which is what lets
/// the batched checkers reproduce the scalar checkers' serial-order-first
/// counterexamples and exact work counters bit for bit.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_TNUM_TNUMMEMBERS_H
#define TNUMS_TNUM_TNUMMEMBERS_H

#include "support/SimdBatch.h"
#include "tnum/Tnum.h"

#include <vector>

namespace tnums {

/// Streams gamma(P) in subset-odometer order (forEachMember's order), one
/// batch at a time. Typical use:
///
///   MemberStream Ys(Q);
///   alignas(SimdBatchAlign) uint64_t Buf[SimdBatchLanes];
///   while (unsigned N = Ys.nextBatch(Buf))
///     ... run a 64-lane kernel over Buf[0..N) ...
///
/// Bottom streams nothing. The final batch may be short (|gamma(P)| is a
/// power of two, so with 64-lane batches a short batch only occurs when
/// |gamma(P)| < 64 -- the "empty tail" case the differential tests pin).
class MemberStream {
public:
  explicit MemberStream(const Tnum &P)
      : Value(P.value()), Mask(P.mask()), Subset(0),
        Done(P.isBottom()) {}

  /// Fills \p Out with up to SimdBatchLanes consecutive members; returns
  /// how many were written (0 once the stream is exhausted).
  unsigned nextBatch(uint64_t *Out) {
    if (Done)
      return 0;
    unsigned N = 0;
    while (N != SimdBatchLanes) {
      Out[N++] = Value | Subset;
      if (Subset == Mask) {
        Done = true;
        break;
      }
      Subset = (Subset - Mask) & Mask;
    }
    return N;
  }

  /// True once every member has been produced.
  bool exhausted() const { return Done; }

  /// Rewinds to the first member.
  void reset() {
    Subset = 0;
    Done = (Value & Mask) != 0;
  }

private:
  uint64_t Value;
  uint64_t Mask;
  uint64_t Subset;
  bool Done;
};

/// Materializes gamma(\p P) into \p Out (cleared and refilled; capacity is
/// retained across calls) in subset-odometer order. The sweeps call this
/// once per (P, Q) pair with a reused buffer, so the fill cost is
/// |gamma(Q)| against |gamma(P)| * |gamma(Q)| of batched work. Requires
/// |gamma(P)| to be vector-materializable (<= 2^30 members).
void materializeMembers(const Tnum &P, std::vector<uint64_t> &Out);

/// A per-universe member table: gamma(U[i]) for every tnum of a universe,
/// materialized once (in subset-odometer order, like materializeMembers)
/// into one flat buffer. The exhaustive sweeps walk the full (P, Q) grid,
/// so each Q's concretization is re-materialized |U| times when done per
/// pair; memoizing it here trades Sigma |gamma| = 4^n words of memory
/// (8 MiB at width 10, 128 MiB at width 12) for dropping that refill from
/// the cell scan entirely. Batched-path outputs are bit-identical either
/// way -- the table stores exactly what materializeMembers produces.
class MemberTable {
public:
  MemberTable() = default;

  /// Builds the table for \p Universe. Every member of every tnum is
  /// stored, so the caller gates construction on memberTableBytes().
  explicit MemberTable(const std::vector<Tnum> &Universe);

  /// gamma(U[i]) as a flat span.
  const uint64_t *members(size_t I) const { return Flat.data() + Offsets[I]; }
  uint64_t numMembers(size_t I) const { return Offsets[I + 1] - Offsets[I]; }

  bool empty() const { return Offsets.empty(); }

private:
  std::vector<uint64_t> Flat;
  std::vector<uint64_t> Offsets; ///< Offsets[i] .. Offsets[i+1] spans U[i].
};

/// Bytes a MemberTable over the full width-\p Width universe occupies:
/// Sigma over well-formed tnums of |gamma| = 4^Width entries of 8 bytes
/// (plus the offset index, one word per tnum).
uint64_t memberTableBytes(unsigned Width);

} // namespace tnums

#endif // TNUMS_TNUM_TNUMMEMBERS_H
