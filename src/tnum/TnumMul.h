//===- tnum/TnumMul.h - Tnum multiplication algorithms ----------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every abstract multiplication algorithm discussed by the paper, kept
/// side-by-side behind a common signature so the precision (Fig. 4,
/// Table I) and performance (Fig. 5) harnesses, the differential tests,
/// and the ablation benchmarks can sweep them uniformly:
///
///   * kernMul            -- the pre-paper Linux kernel algorithm
///                           (Listing 2, half-multiply-add structure, 2n
///                           abstract additions).
///   * bitwiseMulNaive    -- Regehr & Duongsaa's bitwise-domain algorithm
///                           as literally specified (Listing 5), with the
///                           trit-by-trit "kill" loop. O(n^2).
///   * bitwiseMulOpt      -- the paper's machine-arithmetic optimization of
///                           the same algorithm (§IV: 4921 -> 387 cycles).
///   * ourMulSimplified   -- the paper's Listing 3, the form the soundness
///                           proof (Theorem 10) is stated over.
///   * ourMul             -- the paper's final algorithm (Listing 4), now
///                           merged in Linux. Value/mask-decomposed partial
///                           product accumulation, n + 1 abstract
///                           additions, early loop exit.
///   * ourMulFullLoop     -- ablation variant of ourMul without the early
///                           loop exit (isolates its speed contribution).
///
/// All algorithms are sound abstractions of n-bit unsigned multiplication;
/// none is optimal (§III-C discussion). Like the transfer functions they
/// are defined inline: the Figure 5 harness measures them with the exact
/// inlining the kernel's single-file implementation enjoys.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_TNUM_TNUMMUL_H
#define TNUMS_TNUM_TNUMMUL_H

#include "tnum/TnumOps.h"

namespace tnums {

namespace detail {
/// Kernel "half-multiply-add" (Listing 2): accumulates tnum (0, X << k)
/// into Acc for every set bit k of Y.
inline Tnum halfMultiplyAdd(Tnum Acc, uint64_t X, uint64_t Y) {
  while (Y) {
    if (Y & 1)
      Acc = tnumAdd(Acc, Tnum(0, X));
    Y >>= 1;
    X <<= 1;
  }
  return Acc;
}
} // namespace detail

/// Pre-paper kernel multiplication (Listing 2). The loop bound adapts to
/// the operand bits, so no width parameter is needed; callers doing
/// width-n arithmetic truncate the result.
inline Tnum kernMul(Tnum P, Tnum Q) {
  assert(P.isWellFormed() && Q.isWellFormed() && "transfer function on ⊥");
  Tnum Pi = Tnum(P.value() * Q.value(), 0);
  Tnum Acc = detail::halfMultiplyAdd(Pi, P.mask(), Q.mask() | Q.value());
  return detail::halfMultiplyAdd(Acc, Q.mask(), P.value());
}

/// Regehr & Duongsaa bitwise-domain multiplication, naive kill-loop form
/// (Listing 5). Iterates \p Width partial products; the uncertain case
/// "kills" the certain-1 trits of Q one at a time -- deliberately kept
/// naive to measure the paper's §IV observation that careful machine
/// arithmetic matters.
inline Tnum bitwiseMulNaive(Tnum P, Tnum Q, unsigned Width = MaxBitWidth) {
  assert(P.isWellFormed() && Q.isWellFormed() && "transfer function on ⊥");
  Tnum Sum(0, 0);
  for (unsigned I = 0; I != Width; ++I) {
    bool ValueBit = bitAt(P.value(), I);
    bool MaskBit = bitAt(P.mask(), I);
    Tnum Product(0, 0);
    if (ValueBit && !MaskBit) {
      Product = Q; // Certain 1: the partial product is Q itself.
    } else if (MaskBit) {
      // Uncertain: set every certain-1 trit of Q to uncertain, trit by
      // trit (multiply_bit's inner loop from Listing 5).
      uint64_t V = Q.value();
      uint64_t M = Q.mask();
      for (unsigned J = 0; J != Width; ++J) {
        if (bitAt(V, J) && !bitAt(M, J)) {
          V &= ~(uint64_t(1) << J);
          M |= uint64_t(1) << J;
        }
      }
      Product = Tnum(V, M);
    }
    Sum = tnumAdd(Sum, tnumLshift(Product, I));
  }
  return Sum;
}

/// The paper's machine-arithmetic optimization of bitwiseMulNaive: the
/// trit-kill loop becomes the single tnum (0, Q.v | Q.m).
inline Tnum bitwiseMulOpt(Tnum P, Tnum Q, unsigned Width = MaxBitWidth) {
  assert(P.isWellFormed() && Q.isWellFormed() && "transfer function on ⊥");
  Tnum Sum(0, 0);
  for (unsigned I = 0; I != Width; ++I) {
    bool ValueBit = bitAt(P.value(), I);
    bool MaskBit = bitAt(P.mask(), I);
    Tnum Product(0, 0);
    if (ValueBit)
      Product = Q;
    else if (MaskBit)
      Product = Tnum(0, Q.value() | Q.mask()); // Single-op trit kill (§IV).
    Sum = tnumAdd(Sum, tnumLshift(Product, I));
  }
  return Sum;
}

/// The paper's Listing 3: value/mask-decomposed accumulation with a fixed
/// \p Width-iteration loop. Input-output equivalent to ourMul (Lemma 11).
/// AccV accumulates the certain bits of each partial product, AccM the
/// uncertain bits; they meet only in the final addition, which is what
/// makes the value/mask-decomposition proof (Lemma 9) applicable.
inline Tnum ourMulSimplified(Tnum P, Tnum Q, unsigned Width = MaxBitWidth) {
  assert(P.isWellFormed() && Q.isWellFormed() && "transfer function on ⊥");
  Tnum AccV(0, 0);
  Tnum AccM(0, 0);
  for (unsigned I = 0; I != Width; ++I) {
    if ((P.value() & 1) && !(P.mask() & 1)) {
      AccV = tnumAdd(AccV, Tnum(Q.value(), 0));
      AccM = tnumAdd(AccM, Tnum(0, Q.mask()));
    } else if (P.mask() & 1) {
      AccM = tnumAdd(AccM, Tnum(0, Q.value() | Q.mask()));
    }
    // Note: no case for LSB certain 0.
    P = tnumRshift(P, 1);
    Q = tnumLshift(Q, 1);
  }
  return tnumAdd(AccV, AccM);
}

/// The paper's final algorithm (Listing 4), merged into Linux. Provably
/// sound for unbounded widths (Theorem 10); empirically more precise and
/// faster than kernMul. AccV needs no loop -- summing the certain partial
/// products (Q.v << k for every certain-1 bit k of P) is exactly
/// P.v * Q.v (Lemma 11's strength reduction).
inline Tnum ourMul(Tnum P, Tnum Q) {
  assert(P.isWellFormed() && Q.isWellFormed() && "transfer function on ⊥");
  Tnum AccV(P.value() * Q.value(), 0);
  Tnum AccM(0, 0);
  while (P.value() || P.mask()) {
    if ((P.value() & 1) && !(P.mask() & 1))
      AccM = tnumAdd(AccM, Tnum(0, Q.mask()));
    else if (P.mask() & 1)
      AccM = tnumAdd(AccM, Tnum(0, Q.value() | Q.mask()));
    P = tnumRshift(P, 1);
    Q = tnumLshift(Q, 1);
  }
  return tnumAdd(AccV, AccM);
}

/// Ablation variant: ourMul with the early loop exit removed (always runs
/// \p Width iterations).
inline Tnum ourMulFullLoop(Tnum P, Tnum Q, unsigned Width = MaxBitWidth) {
  assert(P.isWellFormed() && Q.isWellFormed() && "transfer function on ⊥");
  Tnum AccV(P.value() * Q.value(), 0);
  Tnum AccM(0, 0);
  for (unsigned I = 0; I != Width; ++I) {
    if ((P.value() & 1) && !(P.mask() & 1))
      AccM = tnumAdd(AccM, Tnum(0, Q.mask()));
    else if (P.mask() & 1)
      AccM = tnumAdd(AccM, Tnum(0, Q.value() | Q.mask()));
    P = tnumRshift(P, 1);
    Q = tnumLshift(Q, 1);
  }
  return tnumAdd(AccV, AccM);
}

/// Identifies one multiplication algorithm for harness sweeps.
enum class MulAlgorithm {
  Kern,
  BitwiseNaive,
  BitwiseOpt,
  OurSimplified,
  Our,
  OurFullLoop,
};

/// All MulAlgorithm enumerators, for sweeping harnesses. Keep in sync with
/// the enum so new algorithms automatically join every campaign.
inline constexpr MulAlgorithm AllMulAlgorithms[] = {
    MulAlgorithm::Kern,          MulAlgorithm::BitwiseNaive,
    MulAlgorithm::BitwiseOpt,    MulAlgorithm::OurSimplified,
    MulAlgorithm::Our,           MulAlgorithm::OurFullLoop};

/// Short stable name used in benchmark output ("kern_mul", "our_mul", ...).
const char *mulAlgorithmName(MulAlgorithm Algorithm);

/// Implementation version tag of \p Algorithm -- the multiplication
/// counterpart of tnumOpVersions() (TnumOps.h). MUST be bumped in
/// TnumMul.cpp whenever the named algorithm's input/output behavior
/// changes (this codebase exists because the kernel's mul algorithm
/// changed once already); the campaign layer keys checkpointed mul cells
/// on it, so a stale tag silently serves outdated verdicts.
const char *mulAlgorithmVersion(MulAlgorithm Algorithm);

/// Runs \p Algorithm on (\p P, \p Q) and truncates the result to \p Width
/// bits. Dispatch layer for the sweeping harnesses; performance benchmarks
/// call the concrete functions directly.
Tnum tnumMul(Tnum P, Tnum Q, MulAlgorithm Algorithm,
             unsigned Width = MaxBitWidth);

} // namespace tnums

#endif // TNUMS_TNUM_TNUMMUL_H
