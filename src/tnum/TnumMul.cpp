//===- tnum/TnumMul.cpp - Tnum multiplication algorithms ------------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "tnum/TnumMul.h"

using namespace tnums;

const char *tnums::mulAlgorithmName(MulAlgorithm Algorithm) {
  switch (Algorithm) {
  case MulAlgorithm::Kern:
    return "kern_mul";
  case MulAlgorithm::BitwiseNaive:
    return "bitwise_mul_naive";
  case MulAlgorithm::BitwiseOpt:
    return "bitwise_mul_opt";
  case MulAlgorithm::OurSimplified:
    return "our_mul_simplified";
  case MulAlgorithm::Our:
    return "our_mul";
  case MulAlgorithm::OurFullLoop:
    return "our_mul_full_loop";
  }
  assert(false && "unknown multiplication algorithm");
  return "unknown";
}

Tnum tnums::tnumMul(Tnum P, Tnum Q, MulAlgorithm Algorithm, unsigned Width) {
  Tnum Result;
  switch (Algorithm) {
  case MulAlgorithm::Kern:
    Result = kernMul(P, Q);
    break;
  case MulAlgorithm::BitwiseNaive:
    Result = bitwiseMulNaive(P, Q, Width);
    break;
  case MulAlgorithm::BitwiseOpt:
    Result = bitwiseMulOpt(P, Q, Width);
    break;
  case MulAlgorithm::OurSimplified:
    Result = ourMulSimplified(P, Q, Width);
    break;
  case MulAlgorithm::Our:
    Result = ourMul(P, Q);
    break;
  case MulAlgorithm::OurFullLoop:
    Result = ourMulFullLoop(P, Q, Width);
    break;
  }
  return tnumTruncate(Result, Width);
}
