//===- tnum/TnumMul.cpp - Tnum multiplication algorithms ------------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "tnum/TnumMul.h"

using namespace tnums;

const char *tnums::mulAlgorithmName(MulAlgorithm Algorithm) {
  switch (Algorithm) {
  case MulAlgorithm::Kern:
    return "kern_mul";
  case MulAlgorithm::BitwiseNaive:
    return "bitwise_mul_naive";
  case MulAlgorithm::BitwiseOpt:
    return "bitwise_mul_opt";
  case MulAlgorithm::OurSimplified:
    return "our_mul_simplified";
  case MulAlgorithm::Our:
    return "our_mul";
  case MulAlgorithm::OurFullLoop:
    return "our_mul_full_loop";
  }
  assert(false && "unknown multiplication algorithm");
  return "unknown";
}

const char *tnums::mulAlgorithmVersion(MulAlgorithm Algorithm) {
  // One tag per algorithm: bumping kern_mul must not invalidate
  // checkpointed our_mul cells (and vice versa) -- that selectivity is
  // the whole point of the incremental campaigns.
  switch (Algorithm) {
  case MulAlgorithm::Kern:
    return "kern_mul v1 listing2";
  case MulAlgorithm::BitwiseNaive:
    return "bitwise_mul_naive v1 listing5";
  case MulAlgorithm::BitwiseOpt:
    return "bitwise_mul_opt v1 sec4";
  case MulAlgorithm::OurSimplified:
    return "our_mul_simplified v1 listing3";
  case MulAlgorithm::Our:
    return "our_mul v1 listing4";
  case MulAlgorithm::OurFullLoop:
    return "our_mul_full_loop v1 ablation";
  }
  assert(false && "unknown multiplication algorithm");
  return "unknown";
}

Tnum tnums::tnumMul(Tnum P, Tnum Q, MulAlgorithm Algorithm, unsigned Width) {
  Tnum Result;
  switch (Algorithm) {
  case MulAlgorithm::Kern:
    Result = kernMul(P, Q);
    break;
  case MulAlgorithm::BitwiseNaive:
    Result = bitwiseMulNaive(P, Q, Width);
    break;
  case MulAlgorithm::BitwiseOpt:
    Result = bitwiseMulOpt(P, Q, Width);
    break;
  case MulAlgorithm::OurSimplified:
    Result = ourMulSimplified(P, Q, Width);
    break;
  case MulAlgorithm::Our:
    Result = ourMul(P, Q);
    break;
  case MulAlgorithm::OurFullLoop:
    Result = ourMulFullLoop(P, Q, Width);
    break;
  }
  return tnumTruncate(Result, Width);
}
