//===- tnum/TnumEnum.cpp - Enumerating tnums and their members ------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "tnum/TnumEnum.h"

using namespace tnums;

uint64_t tnums::numWellFormedTnums(unsigned Width) {
  assert(Width >= 1 && Width <= 40 && "3^Width would overflow");
  uint64_t Count = 1;
  for (unsigned I = 0; I != Width; ++I)
    Count *= 3;
  return Count;
}

std::vector<Tnum> tnums::allWellFormedTnums(unsigned Width) {
  assert(Width >= 1 && Width <= 16 && "enumeration infeasible at this width");
  std::vector<Tnum> Tnums;
  Tnums.reserve(numWellFormedTnums(Width));
  uint64_t WidthMask = lowBitsMask(Width);
  // For each mask M (the unknown positions), the value may be any subset of
  // the remaining positions; 2^(n-k) values per k-bit mask sums to 3^n.
  for (uint64_t Mask = 0;; Mask = (Mask + 1) & WidthMask) {
    uint64_t ValueSpace = WidthMask & ~Mask;
    uint64_t Value = 0;
    for (;;) {
      Tnums.push_back(Tnum(Value, Mask));
      if (Value == ValueSpace)
        break;
      Value = (Value - ValueSpace) & ValueSpace;
    }
    if (Mask == WidthMask)
      break;
  }
  return Tnums;
}

std::vector<uint64_t> tnums::allMembers(const Tnum &P) {
  std::vector<uint64_t> Members;
  if (P.isBottom())
    return Members;
  assert(P.numUnknownBits() <= 30 && "member enumeration infeasible");
  Members.reserve(P.concretizationSize());
  forEachMember(P, [&](uint64_t M) { Members.push_back(M); });
  return Members;
}

Tnum tnums::abstractOf(const std::vector<uint64_t> &Values) {
  Tnum Acc = Tnum::makeBottom();
  for (uint64_t V : Values)
    Acc = abstractInsert(Acc, V);
  return Acc;
}

Tnum tnums::abstractInsert(Tnum Acc, uint64_t Value) {
  return Acc.joinWith(Tnum::makeConstant(Value));
}
