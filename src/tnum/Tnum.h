//===- tnum/Tnum.h - Tristate numbers (the tnum abstract domain) -*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tnum abstract value: every bit of a 64-bit quantity is known-0,
/// known-1, or unknown (µ). Following the Linux kernel implementation that
/// the paper formalizes (§II-B), a tnum P is a pair (P.v, P.m) of 64-bit
/// words -- "value" and "mask" -- where for each bit position k:
///
///   P.v[k] = 0, P.m[k] = 0   =>  trit k is known 0
///   P.v[k] = 1, P.m[k] = 0   =>  trit k is known 1
///   P.v[k] = 0, P.m[k] = 1   =>  trit k is unknown (µ)
///   P.v[k] = 1, P.m[k] = 1   =>  ill-formed; any such tnum denotes ⊥
///
/// The concretization is gamma(P) = { c | c & ~P.m == P.v } (Eqn. 7), and
/// the abstraction of a set C is (AND of C, AND of C xor OR of C) (Eqn. 5).
/// This header defines the value type, the lattice structure (order, join,
/// meet, top, bottom), the Galois-connection functions, and string I/O.
/// Transfer functions live in TnumOps.h / TnumMul.h.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_TNUM_TNUM_H
#define TNUMS_TNUM_TNUM_H

#include "support/Bits.h"

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>

namespace tnums {

/// The three possible states of one tnum bit position.
enum class Trit : uint8_t {
  Zero,    ///< Known to be 0 in every concrete execution.
  One,     ///< Known to be 1 in every concrete execution.
  Unknown, ///< May be 0 in some executions and 1 in others (µ).
};

/// A tristate number over 64 bits, in the kernel's (value, mask)
/// representation. Width-n reasoning (n < 64) is done with tnums whose bits
/// at positions >= n are known zero; see fitsWidth() and truncate() in
/// TnumOps.h.
class Tnum {
public:
  /// Constructs the constant 0 (all trits known zero).
  constexpr Tnum() : Value(0), Mask(0) {}

  /// Constructs the tnum (\p V, \p M) directly. The pair may be ill-formed
  /// (V & M != 0), in which case the tnum denotes bottom; most call sites
  /// want one of the named factories below instead.
  constexpr Tnum(uint64_t V, uint64_t M) : Value(V), Mask(M) {}

  /// The exact abstraction of the single concrete value \p C.
  static constexpr Tnum makeConstant(uint64_t C) { return Tnum(C, 0); }

  /// Top for \p Width bits: every trit in the width unknown, higher bits
  /// known zero.
  static constexpr Tnum makeUnknown(unsigned Width = MaxBitWidth) {
    return Tnum(0, lowBitsMask(Width));
  }

  /// The canonical bottom element (every bit position contradictory).
  /// Any ill-formed pair also denotes bottom; this is the normal form.
  static constexpr Tnum makeBottom() {
    return Tnum(~uint64_t(0), ~uint64_t(0));
  }

  /// The kernel's tnum_range(): the least tnum whose concretization
  /// contains every value in [\p Min, \p Max] (unsigned). Requires
  /// Min <= Max.
  static Tnum makeRange(uint64_t Min, uint64_t Max);

  /// Parses a trit string, most significant trit first, e.g. "01u0".
  /// Accepts '0', '1', and 'u'/'U'/'x'/'X' for unknown. Returns
  /// std::nullopt on bad characters, empty input, or length > 64. The
  /// parsed tnum has width = strlen(Text); higher bits are known zero.
  static std::optional<Tnum> parse(const std::string &Text);

  uint64_t value() const { return Value; }
  uint64_t mask() const { return Mask; }

  /// True if no bit position is simultaneously in value and mask (Eqn. 10).
  /// Ill-formed tnums all denote bottom (the empty concretization).
  bool isWellFormed() const { return (Value & Mask) == 0; }

  /// True if this tnum denotes the empty set of concrete values.
  bool isBottom() const { return !isWellFormed(); }

  /// True if the concretization is a single value (no unknown trits).
  bool isConstant() const { return isWellFormed() && Mask == 0; }

  /// The unique concrete value; only valid on constants.
  uint64_t constantValue() const {
    assert(isConstant() && "not a constant tnum");
    return Value;
  }

  /// True if every trit inside \p Width is unknown (top at that width) and
  /// all higher trits are known zero.
  bool isUnknown(unsigned Width = MaxBitWidth) const {
    return isWellFormed() && Value == 0 && Mask == lowBitsMask(Width);
  }

  /// The membership predicate c in gamma(P): c & ~P.m == P.v (Eqn. 9).
  /// Bottom contains nothing.
  bool contains(uint64_t C) const {
    return isWellFormed() && (C & ~Mask) == Value;
  }

  /// The trit at bit position \p Pos. Only valid on well-formed tnums.
  Trit tritAt(unsigned Pos) const {
    assert(Pos < MaxBitWidth && "trit position out of range");
    assert(isWellFormed() && "trit query on bottom");
    if (bitAt(Mask, Pos))
      return Trit::Unknown;
    return bitAt(Value, Pos) ? Trit::One : Trit::Zero;
  }

  /// Number of unknown trits.
  unsigned numUnknownBits() const { return popCount(Mask); }

  /// log2 of |gamma(P)| for well-formed tnums: the number of unknown trits.
  /// (|gamma| = 2^popcount(mask); Figure 4 compares these in log space.)
  unsigned concretizationSizeLog2() const {
    assert(isWellFormed() && "size of bottom concretization is 0, not 2^k");
    return numUnknownBits();
  }

  /// |gamma(P)|, saturating at UINT64_MAX when the mask has all 64 bits set
  /// (the true size 2^64 is not representable). Bottom yields 0.
  uint64_t concretizationSize() const;

  /// The smallest member of gamma(P) (which is P.v), and the largest
  /// (P.v | P.m). Only valid on well-formed tnums.
  uint64_t minMember() const {
    assert(isWellFormed() && "min of empty set");
    return Value;
  }
  uint64_t maxMember() const {
    assert(isWellFormed() && "max of empty set");
    return Value | Mask;
  }

  /// True if every bit at position >= \p Width is known zero.
  bool fitsWidth(unsigned Width) const {
    return tnums::fitsWidth(Value | Mask, Width);
  }

  /// The abstract partial order P ⊑A Q (Eqn. 2): gamma(P) ⊆ gamma(Q).
  /// Bottom is below everything; nothing but bottom is below bottom.
  bool isSubsetOf(const Tnum &Q) const;

  /// True if this and \p Q are comparable under ⊑A in either direction.
  bool isComparableTo(const Tnum &Q) const {
    return isSubsetOf(Q) || Q.isSubsetOf(*this);
  }

  /// Least upper bound (join / kernel tnum_union semantics): the smallest
  /// tnum whose concretization contains gamma(P) ∪ gamma(Q).
  Tnum joinWith(const Tnum &Q) const;

  /// Greatest lower bound (meet / kernel tnum_intersect semantics): keeps
  /// bits known on either side. If the two tnums disagree on a known bit
  /// the result is bottom (returned in canonical form).
  Tnum meetWith(const Tnum &Q) const;

  /// Renders the low \p Width trits, most significant first, using
  /// \p UnknownChar for µ (default 'u', matching parse()). Bottom renders
  /// as "<bottom>".
  std::string toString(unsigned Width = MaxBitWidth,
                       char UnknownChar = 'u') const;

  /// Renders as the kernel-style pair "(v=0x..., m=0x...)".
  std::string toVmString() const;

  friend bool operator==(const Tnum &A, const Tnum &B) {
    return A.Value == B.Value && A.Mask == B.Mask;
  }
  friend bool operator!=(const Tnum &A, const Tnum &B) { return !(A == B); }

private:
  uint64_t Value;
  uint64_t Mask;
};

} // namespace tnums

#endif // TNUMS_TNUM_TNUM_H
