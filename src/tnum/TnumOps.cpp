//===- tnum/TnumOps.cpp - Tnum transfer functions -------------------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "tnum/TnumOps.h"

#include <bit>

using namespace tnums;

Tnum tnums::tnumArshift(Tnum P, unsigned Shift, unsigned Width) {
  assert(P.isWellFormed() && "transfer function on ⊥");
  assert(P.fitsWidth(Width) && "operand wider than requested width");
  assert(Shift < Width && "shift amount out of range");
  // Arithmetic-shifting the mask replicates an unknown sign trit into the
  // vacated positions, exactly like the kernel's 32/64-bit special cases.
  uint64_t V = arithmeticShiftRight(P.value(), Shift, Width);
  uint64_t M = arithmeticShiftRight(P.mask(), Shift, Width);
  return Tnum(V, M);
}

Tnum tnums::tnumCast(Tnum P, unsigned Bytes) {
  assert(Bytes >= 1 && Bytes <= 8 && "cast size out of range");
  return tnumTruncate(P, Bytes * 8);
}

Tnum tnums::tnumDiv(Tnum P, Tnum Q, unsigned Width) {
  assert(P.isWellFormed() && Q.isWellFormed() && "transfer function on ⊥");
  if (P.isConstant() && Q.isConstant()) {
    uint64_t Divisor = Q.constantValue();
    uint64_t Result =
        Divisor == 0 ? 0 : P.constantValue() / Divisor; // BPF: x / 0 == 0.
    return Tnum::makeConstant(truncateToWidth(Result, Width));
  }
  return Tnum::makeUnknown(Width);
}

Tnum tnums::tnumMod(Tnum P, Tnum Q, unsigned Width) {
  assert(P.isWellFormed() && Q.isWellFormed() && "transfer function on ⊥");
  if (P.isConstant() && Q.isConstant()) {
    uint64_t Divisor = Q.constantValue();
    // BPF convention: x % 0 leaves the dividend unchanged.
    uint64_t Result = Divisor == 0 ? P.constantValue()
                                   : P.constantValue() % Divisor;
    return Tnum::makeConstant(truncateToWidth(Result, Width));
  }
  return Tnum::makeUnknown(Width);
}

namespace {

/// One trit as a pair of possibility flags.
struct TritSet {
  bool CanBe0;
  bool CanBe1;
};

TritSet tritSetAt(const Tnum &T, unsigned Pos) {
  if (bitAt(T.mask(), Pos))
    return {true, true};
  bool IsOne = bitAt(T.value(), Pos) != 0;
  return {!IsOne, IsOne};
}

/// Ripples a trit-level adder/subtractor across the width. For each bit,
/// enumerate the feasible (p, q, carry) combinations (at most 8) and
/// collect which result/carry-out values are possible -- the per-bit
/// optimal transfer, composed bit by bit like Regehr & Duongsaa's
/// operators. \p IsSub selects the full-subtractor equations
/// (Definition 23) over the full-adder ones (Definition 1).
Tnum rippleArithmetic(Tnum P, Tnum Q, unsigned Width, bool IsSub) {
  assert(P.isWellFormed() && Q.isWellFormed() && "transfer function on ⊥");
  uint64_t ResultValue = 0;
  uint64_t ResultMask = 0;
  TritSet Carry = {true, false}; // Carry/borrow into bit 0 is 0.
  for (unsigned I = 0; I != Width; ++I) {
    TritSet PBit = tritSetAt(P, I);
    TritSet QBit = tritSetAt(Q, I);
    bool ResultCan[2] = {false, false};
    bool CarryCan[2] = {false, false};
    for (unsigned PV = 0; PV != 2; ++PV) {
      if (!(PV ? PBit.CanBe1 : PBit.CanBe0))
        continue;
      for (unsigned QV = 0; QV != 2; ++QV) {
        if (!(QV ? QBit.CanBe1 : QBit.CanBe0))
          continue;
        for (unsigned CV = 0; CV != 2; ++CV) {
          if (!(CV ? Carry.CanBe1 : Carry.CanBe0))
            continue;
          unsigned R = PV ^ QV ^ CV;
          unsigned CarryOut =
              IsSub ? (((PV ^ 1) & QV) | (CV & ((PV ^ QV) ^ 1)))
                    : ((PV & QV) | (CV & (PV ^ QV)));
          ResultCan[R] = true;
          CarryCan[CarryOut] = true;
        }
      }
    }
    if (ResultCan[0] && ResultCan[1])
      ResultMask |= uint64_t(1) << I;
    else if (ResultCan[1])
      ResultValue |= uint64_t(1) << I;
    Carry = {CarryCan[0], CarryCan[1]};
  }
  return Tnum(ResultValue, ResultMask);
}

} // namespace

Tnum tnums::rippleAdd(Tnum P, Tnum Q, unsigned Width) {
  return rippleArithmetic(P, Q, Width, /*IsSub=*/false);
}

Tnum tnums::rippleSub(Tnum P, Tnum Q, unsigned Width) {
  return rippleArithmetic(P, Q, Width, /*IsSub=*/true);
}

namespace {

/// Joins ShiftOne(P, Amt) over every masked shift amount consistent with
/// \p Amount. Factored out of the three by-tnum shift operators.
template <typename ShiftOneFn>
Tnum joinOverShiftAmounts(Tnum Amount, unsigned Width, ShiftOneFn ShiftOne) {
  assert((Width & (Width - 1)) == 0 &&
         "variable shifts require a power-of-two width");
  // BPF semantics mask the amount to Width - 1, so only the low
  // log2(Width) bits of the amount tnum matter.
  unsigned AmountBits = static_cast<unsigned>(std::countr_zero(Width));
  Tnum MaskedAmount = AmountBits == 0 ? Tnum::makeConstant(0)
                                      : tnumTruncate(Amount, AmountBits);
  Tnum Result = Tnum::makeBottom();
  for (unsigned Amt = 0; Amt != Width; ++Amt) {
    if (!MaskedAmount.contains(Amt))
      continue;
    Result = Result.joinWith(ShiftOne(Amt));
    if (Result.isUnknown(Width))
      break; // Already top at this width; further joins cannot grow it.
  }
  assert(!Result.isBottom() && "masked amount tnum had no members");
  return Result;
}

} // namespace

Tnum tnums::tnumLshiftByTnum(Tnum P, Tnum Amount, unsigned Width) {
  assert(P.isWellFormed() && Amount.isWellFormed() && "transfer on ⊥");
  assert(P.fitsWidth(Width) && "operand wider than requested width");
  return joinOverShiftAmounts(Amount, Width, [&](unsigned Amt) {
    return tnumTruncate(tnumLshift(P, Amt), Width);
  });
}

Tnum tnums::tnumRshiftByTnum(Tnum P, Tnum Amount, unsigned Width) {
  assert(P.isWellFormed() && Amount.isWellFormed() && "transfer on ⊥");
  assert(P.fitsWidth(Width) && "operand wider than requested width");
  return joinOverShiftAmounts(
      Amount, Width, [&](unsigned Amt) { return tnumRshift(P, Amt); });
}

Tnum tnums::tnumArshiftByTnum(Tnum P, Tnum Amount, unsigned Width) {
  assert(P.isWellFormed() && Amount.isWellFormed() && "transfer on ⊥");
  assert(P.fitsWidth(Width) && "operand wider than requested width");
  return joinOverShiftAmounts(Amount, Width, [&](unsigned Amt) {
    return tnumArshift(P, Amt, Width);
  });
}

//===----------------------------------------------------------------------===//
// Implementation version tags (see TnumOps.h). Bump a tag whenever the
// algorithm behind it changes behavior; the campaign layer invalidates
// exactly the checkpointed cells that verified the bumped operator.
//===----------------------------------------------------------------------===//

const TnumOpVersions &tnums::tnumOpVersions() {
  static const TnumOpVersions Versions = {
      /*Add=*/"tnum_add v1 kernel-listing1",
      /*Sub=*/"tnum_sub v1 kernel-listing6",
      /*And=*/"tnum_and v1 mine-bitfield",
      /*Or=*/"tnum_or v1 mine-bitfield",
      /*Xor=*/"tnum_xor v1 mine-bitfield",
      /*Div=*/"tnum_div v1 constant-else-top",
      /*Mod=*/"tnum_mod v1 constant-else-top",
      /*Lshift=*/"tnum_lsh v1 join-over-amounts",
      /*Rshift=*/"tnum_rsh v1 join-over-amounts",
      /*Arshift=*/"tnum_arsh v1 join-over-amounts",
  };
  return Versions;
}
