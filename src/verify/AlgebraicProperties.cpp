//===- verify/AlgebraicProperties.cpp - Algebraic property search ---------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "verify/AlgebraicProperties.h"

#include "tnum/TnumEnum.h"
#include "tnum/TnumOps.h"

using namespace tnums;

std::optional<AssociativityWitness>
tnums::findAddNonAssociativityWitness(unsigned Width) {
  std::vector<Tnum> Universe = allWellFormedTnums(Width);
  for (const Tnum &P : Universe) {
    for (const Tnum &Q : Universe) {
      Tnum PQ = tnumTruncate(tnumAdd(P, Q), Width);
      for (const Tnum &R : Universe) {
        Tnum LeftFirst = tnumTruncate(tnumAdd(PQ, R), Width);
        Tnum RightFirst = tnumTruncate(
            tnumAdd(P, tnumTruncate(tnumAdd(Q, R), Width)), Width);
        if (LeftFirst != RightFirst)
          return AssociativityWitness{P, Q, R, LeftFirst, RightFirst};
      }
    }
  }
  return std::nullopt;
}

std::optional<InverseWitness>
tnums::findAddSubNonInverseWitness(unsigned Width) {
  std::vector<Tnum> Universe = allWellFormedTnums(Width);
  for (const Tnum &P : Universe) {
    for (const Tnum &Q : Universe) {
      Tnum RoundTrip = tnumTruncate(
          tnumSub(tnumTruncate(tnumAdd(P, Q), Width), Q), Width);
      if (RoundTrip != P)
        return InverseWitness{P, Q, RoundTrip};
    }
  }
  return std::nullopt;
}

/// Shared pair sweep for commutativity of an arbitrary binary operator.
template <typename OpT>
static std::optional<CommutativityWitness>
findNonCommutativityWitness(unsigned Width, OpT Op) {
  std::vector<Tnum> Universe = allWellFormedTnums(Width);
  for (const Tnum &P : Universe) {
    for (const Tnum &Q : Universe) {
      Tnum Forward = Op(P, Q);
      Tnum Backward = Op(Q, P);
      if (Forward != Backward)
        return CommutativityWitness{P, Q, Forward, Backward};
    }
  }
  return std::nullopt;
}

std::optional<CommutativityWitness>
tnums::findMulNonCommutativityWitness(MulAlgorithm Mul, unsigned Width) {
  return findNonCommutativityWitness(Width, [&](Tnum P, Tnum Q) {
    return tnumMul(P, Q, Mul, Width);
  });
}

std::optional<CommutativityWitness>
tnums::findAddNonCommutativityWitness(unsigned Width) {
  return findNonCommutativityWitness(Width, [&](Tnum P, Tnum Q) {
    return tnumTruncate(tnumAdd(P, Q), Width);
  });
}
