//===- verify/ParallelSweep.h - Parallel exhaustive verification -*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multithreaded form of the bounded verification engine. The serial
/// checkers (SoundnessChecker.h, OptimalityChecker.h) walk the 9^n grid of
/// well-formed tnum pairs in row-major order; at the widths the paper's
/// campaign targets (kern_mul was SMT-verified only up to n = 8) that walk
/// costs 16^n concrete evaluations and stops being interactive. This
/// engine splits the same grid into fixed-size chunks of consecutive
/// (P, Q) pair indices and runs them on a work-stealing thread pool
/// (support/ThreadPool.h), pushing exhaustive sweeps to width 10-12.
///
/// Determinism contract: results are bit-identical for every thread count,
/// including 1, and identical to the serial checkers.
///
///  * When the property holds, every chunk is fully scanned, so the
///    PairsChecked / ConcreteChecked totals (and OptimalPairs) are exact
///    grid totals -- independent of scheduling.
///  * When the property fails, the reported counterexample is the FIRST
///    one in serial row-major order: each chunk stops at its own first
///    violation, chunks above the lowest failing chunk are cancelled, and
///    chunks below it always run to completion, so the minimum failing
///    chunk's witness is exactly the serial witness. The work counters
///    then reflect only the work actually performed (cancellation makes
///    them scheduling-dependent), mirroring the serial early-exit counts
///    only approximately; treat them as progress indicators on failure.
///
/// The checkers accept an injectable abstract operator so the test suite
/// can feed deliberately broken transfer functions through the exact same
/// machinery and observe the deterministic witness.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_VERIFY_PARALLELSWEEP_H
#define TNUMS_VERIFY_PARALLELSWEEP_H

#include "verify/MonotonicityChecker.h"
#include "verify/OptimalityChecker.h"
#include "verify/SoundnessChecker.h"

#include <functional>
#include <vector>

namespace tnums {

/// Tuning knobs for a parallel sweep.
struct SweepConfig {
  /// Worker threads; 0 means ThreadPool::hardwareConcurrency().
  unsigned NumThreads = 0;

  /// Consecutive (P, Q) pair indices per work chunk. The default keeps
  /// chunks coarse enough that queue traffic is negligible yet fine
  /// enough that 4-16 threads load-balance across the wildly varying
  /// |gamma(P)| * |gamma(Q)| chunk costs.
  uint64_t ChunkPairs = 4096;

  /// Member-scan path (support/SimdBatch.h): batched 64-lane kernels by
  /// default, SimdMode::Off for the scalar reference. Orthogonal to the
  /// determinism contract -- every mode produces bit-identical reports.
  SimdMode Simd = SimdMode::Auto;

  /// Budget for memoizing the per-universe member table
  /// (tnum/TnumMembers.h): when gamma of the whole universe fits
  /// (4^width * 8 bytes <= cap), the batched sweeps build it once and stop
  /// re-materializing gamma(Q) per (P, Q) pair. The default covers widths
  /// <= 12 (128 MiB); wider sweeps fall back to per-pair materialization.
  /// Zero disables memoization. Bit-identical reports either way.
  uint64_t MemberTableBytesCap = uint64_t(1) << 28;
};

/// An abstract binary transfer function as the sweep sees it: inputs are
/// well-formed width-n tnums, the result is already truncated to width.
/// Signature matches applyAbstractBinary after binding Op/Width/Mul.
using AbstractBinaryFn = std::function<Tnum(const Tnum &, const Tnum &)>;

/// Parallel equivalent of checkSoundnessExhaustive: verifies Eqn. 11 for
/// \p Op at \p Width over every well-formed tnum pair, multithreaded.
SoundnessReport
checkSoundnessExhaustiveParallel(BinaryOp Op, unsigned Width,
                                 MulAlgorithm Mul = MulAlgorithm::Our,
                                 const SweepConfig &Config = SweepConfig());

/// Same, but with an injected abstract operator: \p Concrete supplies the
/// concrete semantics (and the shift-width restriction), \p Abstract the
/// transfer function under test.
SoundnessReport
checkSoundnessExhaustiveParallel(BinaryOp Concrete, const AbstractBinaryFn &Abstract,
                                 unsigned Width,
                                 const SweepConfig &Config = SweepConfig());

/// Parallel equivalent of checkOptimalityExhaustive. By default scans the
/// full grid, making OptimalPairs / PairsChecked exact totals. With
/// \p StopAtFirst, chunks above the lowest non-optimal chunk are
/// cancelled (the soundness checker's protocol), trading exact counts on
/// failure for an early exit. Either way the reported counterexample is
/// the serial-order first non-optimal pair.
OptimalityReport
checkOptimalityExhaustiveParallel(BinaryOp Op, unsigned Width,
                                  MulAlgorithm Mul = MulAlgorithm::Our,
                                  const SweepConfig &Config = SweepConfig(),
                                  bool StopAtFirst = false);

/// Parallel equivalent of checkMonotonicityExhaustive: chunks the same
/// row-major (P2, Q2) grid across the pool; each pair's sub-tnum walk
/// stays scalar (it visits abstract values, not members, so the SIMD
/// kernels do not apply). Same determinism protocol as the soundness
/// sweep: the reported counterexample is the serial-order first
/// violation, QuadruplesChecked is the exact grid total when the property
/// holds and a progress indicator on failure.
MonotonicityReport
checkMonotonicityExhaustiveParallel(BinaryOp Op, unsigned Width,
                                    MulAlgorithm Mul = MulAlgorithm::Our,
                                    const SweepConfig &Config = SweepConfig());

/// Schedules \p Fn(Begin, End) over consecutive chunks of the row-major
/// index space [0, Total) on the sweep pool -- the building block the
/// Table I / Fig. 4 pair walks use to run order-independent reductions
/// (counter sums, histograms) in parallel. Ranges are disjoint and cover
/// [0, Total) exactly once; \p Fn runs concurrently and must synchronize
/// any merging into shared state itself. With NumThreads == 1 the ranges
/// run inline, in increasing order, on the calling thread.
void forEachIndexRangeParallel(
    uint64_t Total, const SweepConfig &Config,
    const std::function<void(uint64_t, uint64_t)> &Fn);

/// One (algorithm, width) cell of a multiplication soundness campaign.
struct MulSweepResult {
  MulAlgorithm Algorithm;
  unsigned Width;
  SoundnessReport Report;
  double Seconds; // wall-clock for this cell
};

/// Sweeps ALL six multiplication algorithms at each width in \p Widths
/// through the parallel soundness checker -- the paper's SIII-A
/// multiplication campaign, beyond its n = 8 SMT horizon. Cells are
/// ordered (width-major, algorithm-minor) and each cell's report obeys the
/// determinism contract above.
std::vector<MulSweepResult>
sweepMulSoundness(const std::vector<unsigned> &Widths,
                  const SweepConfig &Config = SweepConfig());

} // namespace tnums

#endif // TNUMS_VERIFY_PARALLELSWEEP_H
