//===- verify/ParallelSweep.h - Parallel exhaustive verification -*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multithreaded form of the bounded verification engine. The serial
/// checkers (SoundnessChecker.h, OptimalityChecker.h) walk the 9^n grid of
/// well-formed tnum pairs in row-major order; at the widths the paper's
/// campaign targets (kern_mul was SMT-verified only up to n = 8) that walk
/// costs 16^n concrete evaluations and stops being interactive. This
/// engine splits the same grid into fixed-size chunks of consecutive
/// (P, Q) pair indices and runs them on a work-stealing thread pool
/// (support/ThreadPool.h), pushing exhaustive sweeps to width 10-12.
///
/// Since the Campaign refactor the engine is *range-based*: a SweepGrid
/// (the enumerated universe plus the optional memoized member table) is
/// built once per width and any number of [Begin, End) pair-index ranges
/// are swept against it. The classic full-grid entry points below are
/// wrappers over the range [0, TotalPairs); verify/Campaign.h layers
/// sharding, checkpointing, and order-independent merging on top of the
/// range form.
///
/// Determinism contract: results are bit-identical for every thread count,
/// including 1, and identical to the serial checkers.
///
///  * When the property holds, every chunk is fully scanned, so the
///    PairsChecked / ConcreteChecked totals (and OptimalPairs) are exact
///    grid totals -- independent of scheduling.
///  * When the property fails, the reported counterexample is the FIRST
///    one in serial row-major order: each chunk stops at its own first
///    violation, chunks above the lowest failing chunk are cancelled, and
///    chunks below it always run to completion, so the minimum failing
///    chunk's witness is exactly the serial witness. The work counters
///    then reflect only the work actually performed (cancellation makes
///    them scheduling-dependent), mirroring the serial early-exit counts
///    only approximately; treat them as progress indicators on failure.
///    (The Campaign layer re-normalizes failing shards to the exact
///    serial-prefix counts, which is what makes its merged reports
///    deterministic; see docs/CAMPAIGN.md.)
///
/// The checkers accept an injectable abstract operator so the test suite
/// can feed deliberately broken transfer functions through the exact same
/// machinery and observe the deterministic witness.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_VERIFY_PARALLELSWEEP_H
#define TNUMS_VERIFY_PARALLELSWEEP_H

#include "tnum/TnumMembers.h"
#include "verify/MonotonicityChecker.h"
#include "verify/OptimalityChecker.h"
#include "verify/SoundnessChecker.h"

#include <functional>
#include <optional>
#include <vector>

namespace tnums {

/// Tuning knobs for a parallel sweep.
struct SweepConfig {
  /// Worker threads; 0 means ThreadPool::hardwareConcurrency().
  unsigned NumThreads = 0;

  /// Consecutive (P, Q) pair indices per work chunk. The default keeps
  /// chunks coarse enough that queue traffic is negligible yet fine
  /// enough that 4-16 threads load-balance across the wildly varying
  /// |gamma(P)| * |gamma(Q)| chunk costs.
  uint64_t ChunkPairs = 4096;

  /// Member-scan path (support/SimdBatch.h): batched 64-lane kernels by
  /// default, SimdMode::Off for the scalar reference. Orthogonal to the
  /// determinism contract -- every mode produces bit-identical reports.
  SimdMode Simd = SimdMode::Auto;

  /// Budget for memoizing the per-universe member table
  /// (tnum/TnumMembers.h): when gamma of the whole universe fits
  /// (4^width * 8 bytes <= cap), the batched sweeps build it once and stop
  /// re-materializing gamma(Q) per (P, Q) pair. The default covers widths
  /// <= 12 (128 MiB); wider sweeps fall back to per-pair materialization.
  /// Zero disables memoization. Bit-identical reports either way.
  uint64_t MemberTableBytesCap = uint64_t(1) << 28;

  /// Optimality scans only: feed the memoized gamma(P) member list
  /// (from the member table, or staged once per P row) to the batched
  /// alpha reduction instead of re-enumerating gamma(P) per (P, Q) pair.
  /// Off selects the legacy per-pair enumeration -- the A/B reference for
  /// bench/soundness_verification's --compare-optimality. Bit-identical
  /// reports either way.
  bool MemoizeOptimality = true;

  /// Optimality scans only: run the fused evaluate-and-reduce alpha loops
  /// (concrete evaluation and AND/OR accumulation in one register pass,
  /// no intermediate result buffer) for the operators that have them
  /// (hasFusedSimdKernel). Off selects the two-pass batch + ReduceAndOr
  /// path -- the A/B reference for bench/soundness_verification's
  /// --compare-optimality. Bit-identical reports either way.
  bool FuseOptimality = true;
};

/// An abstract binary transfer function as the sweep sees it: inputs are
/// well-formed width-n tnums, the result is already truncated to width.
/// Signature matches applyAbstractBinary after binding Op/Width/Mul.
using AbstractBinaryFn = std::function<Tnum(const Tnum &, const Tnum &)>;

/// The row-major (P, Q) pair grid every sweep walks: pair index I maps to
/// P = Universe[I / NumTnums], Q = Universe[I % NumTnums] -- the exact
/// order the serial checkers use, which is what makes "minimum failing
/// chunk, first failure inside it" equal the serial witness. Build one
/// per width (makeSweepGrid) and sweep any number of ranges against it:
/// the universe enumeration and the member table are the per-width state
/// the Campaign layer shares across every shard and property of a cell.
struct SweepGrid {
  unsigned Width = 0;
  std::vector<Tnum> Universe;
  uint64_t NumTnums = 0;
  uint64_t TotalPairs = 0;
  /// Engaged when the batched path is on and gamma of the whole universe
  /// fits SweepConfig::MemberTableBytesCap (see tnum/TnumMembers.h).
  std::optional<MemberTable> Members;
};

/// Enumerates the width-\p Width universe and, when \p Config's batched
/// path and byte cap allow, memoizes the member table.
SweepGrid makeSweepGrid(unsigned Width, const SweepConfig &Config);

/// Range forms of the three sweeps: scan pair indices [\p Begin, \p End)
/// of \p Grid under the determinism contract above, restricted to the
/// range (the "serial order" is the ascending index order of the range).
/// When the sweep fails and \p FailurePairIndex is non-null, it receives
/// the failing pair's grid index -- the Campaign layer uses it to
/// re-normalize failing shards to exact serial-prefix counters.
SoundnessReport checkSoundnessRangeParallel(
    BinaryOp Concrete, const AbstractBinaryFn &Abstract,
    const SweepGrid &Grid, uint64_t Begin, uint64_t End,
    const SweepConfig &Config,
    std::optional<uint64_t> *FailurePairIndex = nullptr);

OptimalityReport checkOptimalityRangeParallel(
    BinaryOp Op, MulAlgorithm Mul, const SweepGrid &Grid, uint64_t Begin,
    uint64_t End, const SweepConfig &Config, bool StopAtFirst,
    std::optional<uint64_t> *FailurePairIndex = nullptr);

MonotonicityReport checkMonotonicityRangeParallel(
    BinaryOp Op, MulAlgorithm Mul, const SweepGrid &Grid, uint64_t Begin,
    uint64_t End, const SweepConfig &Config,
    std::optional<uint64_t> *FailurePairIndex = nullptr);

/// Parallel precision-gap measurement over [\p Begin, \p End): the range
/// form of measurePrecisionGap (verify/OptimalityChecker.h), always a
/// full scan (a measurement has no cancellation protocol). \p Abstract is
/// the transfer function under measurement (the campaign's override hook
/// flows through here); \p Op supplies the concrete semantics the optimal
/// yardstick enumerates. Chunk-local histograms merge order-independently
/// -- buckets and sums add, and the retained Worst witness is the one with
/// the greatest gap, ties broken by lowest pair index -- so the report is
/// bit-identical to the serial reference for every thread count, chunk
/// size, and SIMD tier. Reuses the memoized concretizations and fused
/// alpha-reduce paths of the optimality sweep (SweepConfig::
/// MemoizeOptimality / FuseOptimality apply unchanged).
PrecisionReport checkPrecisionRangeParallel(BinaryOp Op,
                                            const AbstractBinaryFn &Abstract,
                                            const SweepGrid &Grid,
                                            uint64_t Begin, uint64_t End,
                                            const SweepConfig &Config);

/// Parallel equivalent of checkSoundnessExhaustive: verifies Eqn. 11 for
/// \p Op at \p Width over every well-formed tnum pair, multithreaded.
SoundnessReport
checkSoundnessExhaustiveParallel(BinaryOp Op, unsigned Width,
                                 MulAlgorithm Mul = MulAlgorithm::Our,
                                 const SweepConfig &Config = SweepConfig());

/// Same, but with an injected abstract operator: \p Concrete supplies the
/// concrete semantics (and the shift-width restriction), \p Abstract the
/// transfer function under test.
SoundnessReport
checkSoundnessExhaustiveParallel(BinaryOp Concrete, const AbstractBinaryFn &Abstract,
                                 unsigned Width,
                                 const SweepConfig &Config = SweepConfig());

/// Parallel equivalent of checkOptimalityExhaustive. By default scans the
/// full grid, making OptimalPairs / PairsChecked exact totals. With
/// \p StopAtFirst, chunks above the lowest non-optimal chunk are
/// cancelled (the soundness checker's protocol), trading exact counts on
/// failure for an early exit. Either way the reported counterexample is
/// the serial-order first non-optimal pair.
OptimalityReport
checkOptimalityExhaustiveParallel(BinaryOp Op, unsigned Width,
                                  MulAlgorithm Mul = MulAlgorithm::Our,
                                  const SweepConfig &Config = SweepConfig(),
                                  bool StopAtFirst = false);

/// Parallel equivalent of checkMonotonicityExhaustive: chunks the same
/// row-major (P2, Q2) grid across the pool; each pair's sub-tnum walk
/// stays scalar (it visits abstract values, not members, so the SIMD
/// kernels do not apply). Same determinism protocol as the soundness
/// sweep: the reported counterexample is the serial-order first
/// violation, QuadruplesChecked is the exact grid total when the property
/// holds and a progress indicator on failure.
MonotonicityReport
checkMonotonicityExhaustiveParallel(BinaryOp Op, unsigned Width,
                                    MulAlgorithm Mul = MulAlgorithm::Our,
                                    const SweepConfig &Config = SweepConfig());

/// Schedules \p Fn(Begin, End) over consecutive chunks of the row-major
/// index space [0, Total) on the sweep pool -- the building block the
/// Table I / Fig. 4 pair walks use to run order-independent reductions
/// (counter sums, histograms) in parallel. Ranges are disjoint and cover
/// [0, Total) exactly once; \p Fn runs concurrently and must synchronize
/// any merging into shared state itself. With NumThreads == 1 the ranges
/// run inline, in increasing order, on the calling thread.
void forEachIndexRangeParallel(
    uint64_t Total, const SweepConfig &Config,
    const std::function<void(uint64_t, uint64_t)> &Fn);

/// Subrange form: chunks [\p Begin, \p End) instead of [0, Total) -- what
/// a checkpointed shard of a Table I / Fig. 4 walk runs.
void forEachIndexRangeParallel(
    uint64_t Begin, uint64_t End, const SweepConfig &Config,
    const std::function<void(uint64_t, uint64_t)> &Fn);

/// One (algorithm, width) cell of a multiplication soundness campaign.
struct MulSweepResult {
  MulAlgorithm Algorithm;
  unsigned Width;
  SoundnessReport Report;
  double Seconds; // wall-clock for this cell
};

/// Sweeps ALL six multiplication algorithms at each width in \p Widths
/// through the parallel soundness checker -- the paper's SIII-A
/// multiplication campaign, beyond its n = 8 SMT horizon. Cells are
/// ordered (width-major, algorithm-minor) and each cell's report obeys the
/// determinism contract above. Since the Campaign refactor this is a thin
/// wrapper over runCampaign (verify/Campaign.h) without checkpointing;
/// front ends that want resume/sharding should build a CampaignSpec
/// directly.
std::vector<MulSweepResult>
sweepMulSoundness(const std::vector<unsigned> &Widths,
                  const SweepConfig &Config = SweepConfig());

} // namespace tnums

#endif // TNUMS_VERIFY_PARALLELSWEEP_H
