//===- verify/ParallelSweep.cpp - Parallel exhaustive verification --------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "verify/ParallelSweep.h"

#include "support/ThreadPool.h"
#include "tnum/TnumEnum.h"
#include "tnum/TnumMembers.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <map>
#include <mutex>

using namespace tnums;

namespace {

/// The row-major (P, Q) pair grid a sweep walks, pre-chunked. Pair index
/// I maps to P = Universe[I / N], Q = Universe[I % N] -- the exact order
/// the serial checkers use, which is what makes "minimum failing chunk,
/// first failure inside it" equal the serial witness.
struct PairGrid {
  std::vector<Tnum> Universe;
  uint64_t NumTnums;
  uint64_t TotalPairs;
  uint64_t ChunkPairs;
  uint64_t NumChunks;
};

PairGrid makeGrid(unsigned Width, const SweepConfig &Config) {
  PairGrid Grid;
  Grid.Universe = allWellFormedTnums(Width);
  Grid.NumTnums = Grid.Universe.size();
  Grid.TotalPairs = Grid.NumTnums * Grid.NumTnums;
  Grid.ChunkPairs = std::max<uint64_t>(1, Config.ChunkPairs);
  Grid.NumChunks = (Grid.TotalPairs + Grid.ChunkPairs - 1) / Grid.ChunkPairs;
  return Grid;
}

/// Runs \p Fn(ChunkIndex) over [0, NumChunks). With one thread (or one
/// chunk) this degenerates to a plain loop -- no pool, no atomics on the
/// caller's stack frame -- so NumThreads == 1 is genuinely serial.
/// Otherwise each pool worker self-schedules chunks off a shared atomic
/// counter; the chunks are coarse, so the counter is not contended.
void runOnPool(const SweepConfig &Config, uint64_t NumChunks,
               const std::function<void(uint64_t)> &Fn) {
  unsigned Threads =
      Config.NumThreads ? Config.NumThreads : ThreadPool::hardwareConcurrency();
  if (Threads == 1 || NumChunks <= 1) {
    for (uint64_t Chunk = 0; Chunk != NumChunks; ++Chunk)
      Fn(Chunk);
    return;
  }
  ThreadPool Pool(Threads);
  std::atomic<uint64_t> NextChunk{0};
  for (unsigned T = 0; T != Threads; ++T)
    Pool.submit([&NextChunk, NumChunks, &Fn] {
      for (;;) {
        uint64_t Chunk = NextChunk.fetch_add(1, std::memory_order_relaxed);
        if (Chunk >= NumChunks)
          return;
        Fn(Chunk);
      }
    });
  Pool.wait();
}

/// Lowers \p Into to \p Chunk if Chunk is smaller (atomic min).
void atomicMin(std::atomic<uint64_t> &Into, uint64_t Chunk) {
  uint64_t Current = Into.load(std::memory_order_acquire);
  while (Chunk < Current &&
         !Into.compare_exchange_weak(Current, Chunk,
                                     std::memory_order_acq_rel))
    ;
}

} // namespace

SoundnessReport tnums::checkSoundnessExhaustiveParallel(
    BinaryOp Concrete, const AbstractBinaryFn &Abstract, unsigned Width,
    const SweepConfig &Config) {
  assert((!isShiftOp(Concrete) || (Width & (Width - 1)) == 0) &&
         "shift verification requires a power-of-two width");
  PairGrid Grid = makeGrid(Width, Config);

  std::atomic<uint64_t> PairsChecked{0};
  std::atomic<uint64_t> ConcreteChecked{0};
  // Lowest chunk index with a violation; chunks above it are cancelled,
  // chunks at or below it always finish, so the final value's witness is
  // the serial-order first counterexample.
  std::atomic<uint64_t> FirstFailChunk{UINT64_MAX};
  std::mutex FailuresMutex;
  std::map<uint64_t, SoundnessCounterexample> FailureByChunk;

  const bool Batched = simdModeBatches(Config.Simd);
  const SimdKernels &Kernels = selectSimdKernels(Config.Simd);

  runOnPool(Config, Grid.NumChunks, [&](uint64_t Chunk) {
    if (Chunk > FirstFailChunk.load(std::memory_order_acquire))
      return;
    uint64_t Begin = Chunk * Grid.ChunkPairs;
    uint64_t End = std::min(Grid.TotalPairs, Begin + Grid.ChunkPairs);
    uint64_t LocalPairs = 0;
    uint64_t LocalConcrete = 0;
    // Chunk-local gamma(Q) staging buffer for the batched path; refilled
    // per pair, capacity retained across the chunk.
    std::vector<uint64_t> Ys;
    for (uint64_t Index = Begin; Index != End; ++Index) {
      if (Chunk > FirstFailChunk.load(std::memory_order_relaxed))
        break;
      const Tnum &P = Grid.Universe[Index / Grid.NumTnums];
      const Tnum &Q = Grid.Universe[Index % Grid.NumTnums];
      ++LocalPairs;
      Tnum R = Abstract(P, Q);
      bool Sound = true;
      if (Batched) {
        materializeMembers(Q, Ys);
        std::optional<SoundnessCounterexample> Violation =
            scanPairMembersBatched(Concrete, Width, P, Q, R, Ys.data(),
                                   Ys.size(), Kernels, LocalConcrete);
        if (Violation) {
          Sound = false;
          {
            std::lock_guard<std::mutex> Lock(FailuresMutex);
            FailureByChunk.emplace(Chunk, *Violation);
          }
          atomicMin(FirstFailChunk, Chunk);
        }
      } else {
        forEachMember(P, [&](uint64_t X) {
          if (!Sound)
            return;
          forEachMember(Q, [&](uint64_t Y) {
            if (!Sound)
              return;
            ++LocalConcrete;
            uint64_t Z = applyConcreteBinary(Concrete, X, Y, Width);
            if (!R.contains(Z)) {
              Sound = false;
              {
                std::lock_guard<std::mutex> Lock(FailuresMutex);
                FailureByChunk.emplace(
                    Chunk, SoundnessCounterexample{P, Q, X, Y, Z, R});
              }
              atomicMin(FirstFailChunk, Chunk);
            }
          });
        });
      }
      if (!Sound)
        break; // This chunk's first (= serial-order) violation is recorded.
    }
    PairsChecked.fetch_add(LocalPairs, std::memory_order_relaxed);
    ConcreteChecked.fetch_add(LocalConcrete, std::memory_order_relaxed);
  });

  SoundnessReport Report;
  Report.PairsChecked = PairsChecked.load();
  Report.ConcreteChecked = ConcreteChecked.load();
  uint64_t FailChunk = FirstFailChunk.load();
  if (FailChunk != UINT64_MAX) {
    std::lock_guard<std::mutex> Lock(FailuresMutex);
    Report.Failure = FailureByChunk.at(FailChunk);
  }
  return Report;
}

SoundnessReport
tnums::checkSoundnessExhaustiveParallel(BinaryOp Op, unsigned Width,
                                        MulAlgorithm Mul,
                                        const SweepConfig &Config) {
  return checkSoundnessExhaustiveParallel(
      Op,
      [Op, Width, Mul](const Tnum &P, const Tnum &Q) {
        return applyAbstractBinary(Op, P, Q, Width, Mul);
      },
      Width, Config);
}

OptimalityReport
tnums::checkOptimalityExhaustiveParallel(BinaryOp Op, unsigned Width,
                                         MulAlgorithm Mul,
                                         const SweepConfig &Config,
                                         bool StopAtFirst) {
  assert((!isShiftOp(Op) || (Width & (Width - 1)) == 0) &&
         "shift verification requires a power-of-two width");
  PairGrid Grid = makeGrid(Width, Config);

  std::atomic<uint64_t> PairsChecked{0};
  std::atomic<uint64_t> OptimalPairs{0};
  // Only consulted in StopAtFirst mode; same protocol as the soundness
  // sweep (cancel strictly-above, always finish at-or-below), so the
  // witness stays the serial-order first non-optimal pair either way.
  std::atomic<uint64_t> FirstFailChunk{UINT64_MAX};
  std::mutex FailuresMutex;
  std::map<uint64_t, OptimalityCounterexample> FailureByChunk;

  const bool Batched = simdModeBatches(Config.Simd);
  const SimdKernels &Kernels = selectSimdKernels(Config.Simd);

  runOnPool(Config, Grid.NumChunks, [&](uint64_t Chunk) {
    if (StopAtFirst && Chunk > FirstFailChunk.load(std::memory_order_acquire))
      return;
    uint64_t Begin = Chunk * Grid.ChunkPairs;
    uint64_t End = std::min(Grid.TotalPairs, Begin + Grid.ChunkPairs);
    uint64_t LocalPairs = 0;
    uint64_t LocalOptimal = 0;
    std::vector<uint64_t> Ys;
    bool ChunkHasFailure = false;
    for (uint64_t Index = Begin; Index != End; ++Index) {
      if (StopAtFirst &&
          (ChunkHasFailure ||
           Chunk > FirstFailChunk.load(std::memory_order_relaxed)))
        break;
      const Tnum &P = Grid.Universe[Index / Grid.NumTnums];
      const Tnum &Q = Grid.Universe[Index % Grid.NumTnums];
      ++LocalPairs;
      Tnum Actual = applyAbstractBinary(Op, P, Q, Width, Mul);
      Tnum Optimal;
      if (Batched) {
        materializeMembers(Q, Ys);
        Optimal = optimalAbstractBinaryBatched(Op, Width, P, Ys.data(),
                                               Ys.size(), Kernels);
      } else {
        Optimal = optimalAbstractBinary(Op, P, Q, Width);
      }
      if (Actual == Optimal) {
        ++LocalOptimal;
        continue;
      }
      if (!ChunkHasFailure) {
        ChunkHasFailure = true;
        {
          std::lock_guard<std::mutex> Lock(FailuresMutex);
          FailureByChunk.emplace(
              Chunk, OptimalityCounterexample{P, Q, Actual, Optimal});
        }
        atomicMin(FirstFailChunk, Chunk);
      }
    }
    PairsChecked.fetch_add(LocalPairs, std::memory_order_relaxed);
    OptimalPairs.fetch_add(LocalOptimal, std::memory_order_relaxed);
  });

  OptimalityReport Report;
  Report.PairsChecked = PairsChecked.load();
  Report.OptimalPairs = OptimalPairs.load();
  std::lock_guard<std::mutex> Lock(FailuresMutex);
  if (!FailureByChunk.empty())
    Report.Failure = FailureByChunk.begin()->second; // Lowest chunk index.
  return Report;
}

MonotonicityReport
tnums::checkMonotonicityExhaustiveParallel(BinaryOp Op, unsigned Width,
                                           MulAlgorithm Mul,
                                           const SweepConfig &Config) {
  assert((!isShiftOp(Op) || (Width & (Width - 1)) == 0) &&
         "shift verification requires a power-of-two width");
  PairGrid Grid = makeGrid(Width, Config);

  std::atomic<uint64_t> QuadruplesChecked{0};
  std::atomic<uint64_t> FirstFailChunk{UINT64_MAX};
  std::mutex FailuresMutex;
  std::map<uint64_t, MonotonicityCounterexample> FailureByChunk;

  runOnPool(Config, Grid.NumChunks, [&](uint64_t Chunk) {
    if (Chunk > FirstFailChunk.load(std::memory_order_acquire))
      return;
    uint64_t Begin = Chunk * Grid.ChunkPairs;
    uint64_t End = std::min(Grid.TotalPairs, Begin + Grid.ChunkPairs);
    uint64_t LocalQuadruples = 0;
    for (uint64_t Index = Begin; Index != End; ++Index) {
      if (Chunk > FirstFailChunk.load(std::memory_order_relaxed))
        break;
      const Tnum &P2 = Grid.Universe[Index / Grid.NumTnums];
      const Tnum &Q2 = Grid.Universe[Index % Grid.NumTnums];
      Tnum R2 = applyAbstractBinary(Op, P2, Q2, Width, Mul);
      bool Stop = false;
      forEachSubTnum(P2, [&](Tnum P1) {
        if (Stop)
          return;
        forEachSubTnum(Q2, [&](Tnum Q1) {
          if (Stop)
            return;
          ++LocalQuadruples;
          Tnum R1 = applyAbstractBinary(Op, P1, Q1, Width, Mul);
          if (!R1.isSubsetOf(R2)) {
            Stop = true;
            {
              std::lock_guard<std::mutex> Lock(FailuresMutex);
              FailureByChunk.emplace(
                  Chunk, MonotonicityCounterexample{P1, Q1, P2, Q2, R1, R2});
            }
            atomicMin(FirstFailChunk, Chunk);
          }
        });
      });
      if (Stop)
        break; // This chunk's first (= serial-order) violation is recorded.
    }
    QuadruplesChecked.fetch_add(LocalQuadruples, std::memory_order_relaxed);
  });

  MonotonicityReport Report;
  Report.QuadruplesChecked = QuadruplesChecked.load();
  uint64_t FailChunk = FirstFailChunk.load();
  if (FailChunk != UINT64_MAX) {
    std::lock_guard<std::mutex> Lock(FailuresMutex);
    Report.Failure = FailureByChunk.at(FailChunk);
  }
  return Report;
}

void tnums::forEachIndexRangeParallel(
    uint64_t Total, const SweepConfig &Config,
    const std::function<void(uint64_t, uint64_t)> &Fn) {
  uint64_t ChunkSize = std::max<uint64_t>(1, Config.ChunkPairs);
  uint64_t NumChunks = (Total + ChunkSize - 1) / ChunkSize;
  runOnPool(Config, NumChunks, [&](uint64_t Chunk) {
    uint64_t Begin = Chunk * ChunkSize;
    Fn(Begin, std::min(Total, Begin + ChunkSize));
  });
}

std::vector<MulSweepResult>
tnums::sweepMulSoundness(const std::vector<unsigned> &Widths,
                         const SweepConfig &Config) {
  std::vector<MulSweepResult> Results;
  Results.reserve(Widths.size() * std::size(AllMulAlgorithms));
  for (unsigned Width : Widths) {
    for (MulAlgorithm Algorithm : AllMulAlgorithms) {
      auto Start = std::chrono::steady_clock::now();
      SoundnessReport Report =
          checkSoundnessExhaustiveParallel(BinaryOp::Mul, Width, Algorithm,
                                           Config);
      std::chrono::duration<double> Elapsed =
          std::chrono::steady_clock::now() - Start;
      Results.push_back({Algorithm, Width, Report, Elapsed.count()});
    }
  }
  return Results;
}
