//===- verify/ParallelSweep.cpp - Parallel exhaustive verification --------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "verify/ParallelSweep.h"

#include "support/Atomic.h"
#include "support/ChunkSchedule.h"
#include "support/Metrics.h"
#include "support/Trace.h"
#include "tnum/TnumEnum.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <map>
#include <mutex>

using namespace tnums;

namespace {

/// Runs \p Fn(ChunkIndex) over [0, NumChunks) on the shared
/// chunk-scheduling loop (support/ChunkSchedule.h); the sweeps carry no
/// per-worker state, so the worker slot is a placeholder.
void runOnPool(const SweepConfig &Config, uint64_t NumChunks,
               const std::function<void(uint64_t)> &Fn) {
  forEachChunkOnPool(
      Config.NumThreads, NumChunks, [] { return 0; },
      [&Fn](uint64_t Chunk, int &) { Fn(Chunk); });
}

/// A failing pair: its grid index (for the Campaign layer's serial-prefix
/// re-normalization) plus the property-specific witness.
template <typename CounterexampleT> struct IndexedFailure {
  uint64_t Index;
  CounterexampleT Witness;
};

/// The chunk / first-fail-chunk cancellation protocol, shared by the three
/// sweeps (soundness, optimality, monotonicity) that used to each carry a
/// near-verbatim copy, applied to the pair-index range [Begin, End) of
/// \p Grid. Templated on the counterexample type, a chunk-local counter
/// block (which doubles as per-chunk scratch -- e.g. the gamma(Q) staging
/// buffer -- since one instance lives per chunk, never shared across
/// threads), and the per-pair body.
///
///   Body(Index, P, Q, Local) -> std::optional<CounterexampleT>
///   Merge(Local)             -- fold the chunk's counters into the totals
///
/// With \p CancelOnFailure (the soundness protocol) a failing chunk stops
/// at its own first violation, chunks strictly above the lowest failing
/// chunk are cancelled, and chunks at or below it always finish -- so the
/// returned counterexample is the serial row-major first one in the
/// range. Without it (optimality's exact-count mode) every chunk
/// full-scans and only the lowest chunk's first witness is kept; the
/// result is the serial-order first counterexample either way.
template <typename CounterexampleT, typename LocalT, typename BodyT,
          typename MergeT>
std::optional<IndexedFailure<CounterexampleT>>
sweepPairGrid(const SweepGrid &Grid, uint64_t Begin, uint64_t End,
              const SweepConfig &Config, bool CancelOnFailure,
              const BodyT &Body, const MergeT &Merge) {
  assert(Begin <= End && End <= Grid.TotalPairs && "range out of grid");
  const uint64_t ChunkPairs = std::max<uint64_t>(1, Config.ChunkPairs);
  const uint64_t NumChunks = (End - Begin + ChunkPairs - 1) / ChunkPairs;

  // Lowest chunk index with a violation; the final value's witness is the
  // serial-order first counterexample.
  std::atomic<uint64_t> FirstFailChunk{UINT64_MAX};
  std::mutex FailuresMutex;
  std::map<uint64_t, IndexedFailure<CounterexampleT>> FailureByChunk;

  runOnPool(Config, NumChunks, [&](uint64_t Chunk) {
    if (CancelOnFailure &&
        Chunk > FirstFailChunk.load(std::memory_order_acquire))
      return;
    uint64_t ChunkBegin = Begin + Chunk * ChunkPairs;
    uint64_t ChunkEnd = std::min(End, ChunkBegin + ChunkPairs);
    LocalT Local{};
    bool ChunkHasFailure = false;
    for (uint64_t Index = ChunkBegin; Index != ChunkEnd; ++Index) {
      if (CancelOnFailure &&
          Chunk > FirstFailChunk.load(std::memory_order_relaxed))
        break;
      const Tnum &P = Grid.Universe[Index / Grid.NumTnums];
      const Tnum &Q = Grid.Universe[Index % Grid.NumTnums];
      std::optional<CounterexampleT> Failure = Body(Index, P, Q, Local);
      if (Failure && !ChunkHasFailure) {
        ChunkHasFailure = true;
        {
          std::lock_guard<std::mutex> Lock(FailuresMutex);
          FailureByChunk.emplace(
              Chunk,
              IndexedFailure<CounterexampleT>{Index, std::move(*Failure)});
        }
        atomicMinU64(FirstFailChunk, Chunk);
      }
      if (ChunkHasFailure && CancelOnFailure)
        break; // This chunk's first (= serial-order) violation is recorded.
    }
    Merge(Local);
  });

  std::lock_guard<std::mutex> Lock(FailuresMutex);
  if (FailureByChunk.empty())
    return std::nullopt;
  return std::move(FailureByChunk.begin()->second); // Lowest chunk index.
}

/// Resolves gamma(Q) for one pair: from the memoized table when present,
/// else materialized into the chunk-local staging buffer \p Ys.
std::pair<const uint64_t *, uint64_t>
resolveMembers(const std::optional<MemberTable> &Members, uint64_t QIndex,
               const Tnum &Q, std::vector<uint64_t> &Ys) {
  if (Members)
    return {Members->members(QIndex), Members->numMembers(QIndex)};
  materializeMembers(Q, Ys);
  return {Ys.data(), Ys.size()};
}

void publishFailureIndex(std::optional<uint64_t> *Out,
                         std::optional<uint64_t> Index) {
  if (Out)
    *Out = Index;
}

} // namespace

SweepGrid tnums::makeSweepGrid(unsigned Width, const SweepConfig &Config) {
  SweepGrid Grid;
  Grid.Width = Width;
  Grid.Universe = allWellFormedTnums(Width);
  Grid.NumTnums = Grid.Universe.size();
  Grid.TotalPairs = Grid.NumTnums * Grid.NumTnums;
  if (simdModeBatches(Config.Simd) && Config.MemberTableBytesCap &&
      memberTableBytes(Width) <= Config.MemberTableBytesCap)
    Grid.Members.emplace(Grid.Universe);
  return Grid;
}

SoundnessReport tnums::checkSoundnessRangeParallel(
    BinaryOp Concrete, const AbstractBinaryFn &Abstract,
    const SweepGrid &Grid, uint64_t Begin, uint64_t End,
    const SweepConfig &Config, std::optional<uint64_t> *FailurePairIndex) {
  assert((!isShiftOp(Concrete) || (Grid.Width & (Grid.Width - 1)) == 0) &&
         "shift verification requires a power-of-two width");
  std::atomic<uint64_t> PairsChecked{0};
  std::atomic<uint64_t> ConcreteChecked{0};

  const bool Batched = simdModeBatches(Config.Simd);
  const SimdKernels &Kernels = selectSimdKernels(Config.Simd);
  const unsigned Width = Grid.Width;

  struct Local {
    uint64_t Pairs = 0;
    uint64_t Concrete = 0;
    // Chunk-local gamma(Q) staging buffer for the non-memoized batched
    // path; refilled per pair, capacity retained across the chunk.
    std::vector<uint64_t> Ys;
  };

  std::optional<IndexedFailure<SoundnessCounterexample>> Failure =
      sweepPairGrid<SoundnessCounterexample, Local>(
          Grid, Begin, End, Config, /*CancelOnFailure=*/true,
          [&](uint64_t Index, const Tnum &P, const Tnum &Q,
              Local &L) -> std::optional<SoundnessCounterexample> {
            ++L.Pairs;
            Tnum R = Abstract(P, Q);
            if (Batched) {
              auto [Ys, NumYs] =
                  resolveMembers(Grid.Members, Index % Grid.NumTnums, Q,
                                 L.Ys);
              return scanPairMembersBatched(Concrete, Width, P, Q, R, Ys,
                                            NumYs, Kernels, L.Concrete);
            }
            std::optional<SoundnessCounterexample> Violation;
            forEachMember(P, [&](uint64_t X) {
              if (Violation)
                return;
              forEachMember(Q, [&](uint64_t Y) {
                if (Violation)
                  return;
                ++L.Concrete;
                uint64_t Z = applyConcreteBinary(Concrete, X, Y, Width);
                if (!R.contains(Z))
                  Violation = SoundnessCounterexample{P, Q, X, Y, Z, R};
              });
            });
            return Violation;
          },
          [&](const Local &L) {
            PairsChecked.fetch_add(L.Pairs, std::memory_order_relaxed);
            ConcreteChecked.fetch_add(L.Concrete, std::memory_order_relaxed);
          });

  SoundnessReport Report;
  Report.PairsChecked = PairsChecked.load();
  Report.ConcreteChecked = ConcreteChecked.load();
  if (Failure) {
    publishFailureIndex(FailurePairIndex, Failure->Index);
    Report.Failure = std::move(Failure->Witness);
  } else {
    publishFailureIndex(FailurePairIndex, std::nullopt);
  }
  return Report;
}

OptimalityReport tnums::checkOptimalityRangeParallel(
    BinaryOp Op, MulAlgorithm Mul, const SweepGrid &Grid, uint64_t Begin,
    uint64_t End, const SweepConfig &Config, bool StopAtFirst,
    std::optional<uint64_t> *FailurePairIndex) {
  assert((!isShiftOp(Op) || (Grid.Width & (Grid.Width - 1)) == 0) &&
         "shift verification requires a power-of-two width");
  std::atomic<uint64_t> PairsChecked{0};
  std::atomic<uint64_t> OptimalPairs{0};

  const bool Batched = simdModeBatches(Config.Simd);
  const bool Memoize = Batched && Config.MemoizeOptimality;
  const SimdKernels &Kernels = selectSimdKernels(Config.Simd);
  const unsigned Width = Grid.Width;

  struct Local {
    uint64_t Pairs = 0;
    uint64_t Optimal = 0;
    std::vector<uint64_t> Ys;
    // Per-P member list staged once per row when the member table is not
    // engaged: chunks walk consecutive indices, so P changes at most
    // every NumTnums pairs and the refill amortizes across the Q axis.
    std::vector<uint64_t> Xs;
    uint64_t XsIndex = UINT64_MAX;
  };

  // StopAtFirst selects the soundness cancellation protocol (early exit,
  // scheduling-dependent counts on failure); the default full-scan keeps
  // OptimalPairs / PairsChecked exact grid totals. Either way the witness
  // is the serial-order first non-optimal pair.
  std::optional<IndexedFailure<OptimalityCounterexample>> Failure =
      sweepPairGrid<OptimalityCounterexample, Local>(
          Grid, Begin, End, Config, /*CancelOnFailure=*/StopAtFirst,
          [&](uint64_t Index, const Tnum &P, const Tnum &Q,
              Local &L) -> std::optional<OptimalityCounterexample> {
            ++L.Pairs;
            Tnum Actual = applyAbstractBinary(Op, P, Q, Width, Mul);
            Tnum Optimal;
            if (Memoize) {
              auto [Ys, NumYs] =
                  resolveMembers(Grid.Members, Index % Grid.NumTnums, Q,
                                 L.Ys);
              const uint64_t *Xs;
              uint64_t NumXs;
              uint64_t PIndex = Index / Grid.NumTnums;
              if (Grid.Members) {
                Xs = Grid.Members->members(PIndex);
                NumXs = Grid.Members->numMembers(PIndex);
              } else {
                if (L.XsIndex != PIndex) {
                  materializeMembers(P, L.Xs);
                  L.XsIndex = PIndex;
                }
                Xs = L.Xs.data();
                NumXs = L.Xs.size();
              }
              Optimal = optimalAbstractBinaryMembers(Op, Width, Xs, NumXs,
                                                     Ys, NumYs, Kernels,
                                                     Config.FuseOptimality);
            } else if (Batched) {
              auto [Ys, NumYs] =
                  resolveMembers(Grid.Members, Index % Grid.NumTnums, Q,
                                 L.Ys);
              Optimal = optimalAbstractBinaryBatched(Op, Width, P, Ys, NumYs,
                                                     Kernels,
                                                     Config.FuseOptimality);
            } else {
              Optimal = optimalAbstractBinary(Op, P, Q, Width);
            }
            if (Actual == Optimal) {
              ++L.Optimal;
              return std::nullopt;
            }
            return OptimalityCounterexample{P, Q, Actual, Optimal};
          },
          [&](const Local &L) {
            PairsChecked.fetch_add(L.Pairs, std::memory_order_relaxed);
            OptimalPairs.fetch_add(L.Optimal, std::memory_order_relaxed);
          });

  OptimalityReport Report;
  Report.PairsChecked = PairsChecked.load();
  Report.OptimalPairs = OptimalPairs.load();
  if (Failure) {
    publishFailureIndex(FailurePairIndex, Failure->Index);
    Report.Failure = std::move(Failure->Witness);
  } else {
    publishFailureIndex(FailurePairIndex, std::nullopt);
  }
  return Report;
}

MonotonicityReport tnums::checkMonotonicityRangeParallel(
    BinaryOp Op, MulAlgorithm Mul, const SweepGrid &Grid, uint64_t Begin,
    uint64_t End, const SweepConfig &Config,
    std::optional<uint64_t> *FailurePairIndex) {
  assert((!isShiftOp(Op) || (Grid.Width & (Grid.Width - 1)) == 0) &&
         "shift verification requires a power-of-two width");
  std::atomic<uint64_t> QuadruplesChecked{0};
  const unsigned Width = Grid.Width;

  struct Local {
    uint64_t Quadruples = 0;
  };

  std::optional<IndexedFailure<MonotonicityCounterexample>> Failure =
      sweepPairGrid<MonotonicityCounterexample, Local>(
          Grid, Begin, End, Config, /*CancelOnFailure=*/true,
          [&](uint64_t, const Tnum &P2, const Tnum &Q2,
              Local &L) -> std::optional<MonotonicityCounterexample> {
            Tnum R2 = applyAbstractBinary(Op, P2, Q2, Width, Mul);
            std::optional<MonotonicityCounterexample> Violation;
            forEachSubTnum(P2, [&](Tnum P1) {
              if (Violation)
                return;
              forEachSubTnum(Q2, [&](Tnum Q1) {
                if (Violation)
                  return;
                ++L.Quadruples;
                Tnum R1 = applyAbstractBinary(Op, P1, Q1, Width, Mul);
                if (!R1.isSubsetOf(R2))
                  Violation =
                      MonotonicityCounterexample{P1, Q1, P2, Q2, R1, R2};
              });
            });
            return Violation;
          },
          [&](const Local &L) {
            QuadruplesChecked.fetch_add(L.Quadruples,
                                        std::memory_order_relaxed);
          });

  MonotonicityReport Report;
  Report.QuadruplesChecked = QuadruplesChecked.load();
  if (Failure) {
    publishFailureIndex(FailurePairIndex, Failure->Index);
    Report.Failure = std::move(Failure->Witness);
  } else {
    publishFailureIndex(FailurePairIndex, std::nullopt);
  }
  return Report;
}

PrecisionReport tnums::checkPrecisionRangeParallel(
    BinaryOp Op, const AbstractBinaryFn &Abstract, const SweepGrid &Grid,
    uint64_t Begin, uint64_t End, const SweepConfig &Config) {
  assert((!isShiftOp(Op) || (Grid.Width & (Grid.Width - 1)) == 0) &&
         "shift verification requires a power-of-two width");
  assert(Begin <= End && End <= Grid.TotalPairs && "range out of grid");

  // Precision-scan observability (docs/OBSERVABILITY.md): counters and
  // per-scan latency, recorded only while the process recorder is enabled
  // -- never feeding back into the report (no observer effect).
  struct ScanMetrics {
    Counter Pairs{"tnums_precision_pairs_total"};
    Histogram ScanNs{"tnums_precision_scan_ns"};
  };
  static ScanMetrics Metrics;
  const uint64_t ScanStartNs = metricsEnabled() ? traceNowNs() : 0;

  const bool Batched = simdModeBatches(Config.Simd);
  const bool Memoize = Batched && Config.MemoizeOptimality;
  const SimdKernels &Kernels = selectSimdKernels(Config.Simd);
  const unsigned Width = Grid.Width;

  // Chunk-local accumulators: buckets and sums add order-independently,
  // and each chunk's worst witness carries its pair index so the global
  // pick (greatest gap, then lowest index) equals the serial scan's
  // first-attaining-max witness for any scheduling.
  struct Local {
    uint64_t Pairs = 0;
    uint64_t SumGap = 0;
    unsigned MaxGap = 0;
    uint64_t Buckets[PrecisionGapBuckets] = {};
    uint64_t WorstIndex = UINT64_MAX;
    std::optional<PrecisionWitness> Worst;
    std::vector<uint64_t> Ys;
    std::vector<uint64_t> Xs;
    uint64_t XsIndex = UINT64_MAX;
  };

  std::mutex Mutex;
  PrecisionReport Report;
  uint64_t WorstIndex = UINT64_MAX;

  forEachIndexRangeParallel(Begin, End, Config, [&](uint64_t ChunkBegin,
                                                    uint64_t ChunkEnd) {
    Local L;
    for (uint64_t Index = ChunkBegin; Index != ChunkEnd; ++Index) {
      const Tnum &P = Grid.Universe[Index / Grid.NumTnums];
      const Tnum &Q = Grid.Universe[Index % Grid.NumTnums];
      ++L.Pairs;
      Tnum Actual = Abstract(P, Q);
      Tnum Optimal;
      if (Memoize) {
        auto [Ys, NumYs] =
            resolveMembers(Grid.Members, Index % Grid.NumTnums, Q, L.Ys);
        const uint64_t *Xs;
        uint64_t NumXs;
        uint64_t PIndex = Index / Grid.NumTnums;
        if (Grid.Members) {
          Xs = Grid.Members->members(PIndex);
          NumXs = Grid.Members->numMembers(PIndex);
        } else {
          if (L.XsIndex != PIndex) {
            materializeMembers(P, L.Xs);
            L.XsIndex = PIndex;
          }
          Xs = L.Xs.data();
          NumXs = L.Xs.size();
        }
        Optimal = optimalAbstractBinaryMembers(Op, Width, Xs, NumXs, Ys,
                                               NumYs, Kernels,
                                               Config.FuseOptimality);
      } else if (Batched) {
        auto [Ys, NumYs] =
            resolveMembers(Grid.Members, Index % Grid.NumTnums, Q, L.Ys);
        Optimal = optimalAbstractBinaryBatched(Op, Width, P, Ys, NumYs,
                                               Kernels,
                                               Config.FuseOptimality);
      } else {
        Optimal = optimalAbstractBinary(Op, P, Q, Width);
      }
      int Gap = std::popcount(Actual.mask()) - std::popcount(Optimal.mask());
      unsigned G = Gap > 0 ? static_cast<unsigned>(Gap) : 0;
      L.SumGap += G;
      ++L.Buckets[G];
      if (G > L.MaxGap) {
        L.MaxGap = G;
        L.WorstIndex = Index;
        L.Worst = PrecisionWitness{P, Q, Actual, Optimal, G};
      }
    }
    std::lock_guard<std::mutex> Lock(Mutex);
    Report.PairsChecked += L.Pairs;
    Report.SumGap += L.SumGap;
    for (unsigned I = 0; I != PrecisionGapBuckets; ++I)
      Report.Buckets[I] += L.Buckets[I];
    if (L.Worst && (L.MaxGap > Report.MaxGap ||
                    (L.MaxGap == Report.MaxGap && L.WorstIndex < WorstIndex))) {
      Report.MaxGap = L.MaxGap;
      WorstIndex = L.WorstIndex;
      Report.Worst = L.Worst;
    }
  });

  Metrics.Pairs.add(Report.PairsChecked);
  if (metricsEnabled())
    Metrics.ScanNs.record(traceNowNs() - ScanStartNs);
  return Report;
}

SoundnessReport tnums::checkSoundnessExhaustiveParallel(
    BinaryOp Concrete, const AbstractBinaryFn &Abstract, unsigned Width,
    const SweepConfig &Config) {
  SweepGrid Grid = makeSweepGrid(Width, Config);
  return checkSoundnessRangeParallel(Concrete, Abstract, Grid, 0,
                                     Grid.TotalPairs, Config);
}

SoundnessReport
tnums::checkSoundnessExhaustiveParallel(BinaryOp Op, unsigned Width,
                                        MulAlgorithm Mul,
                                        const SweepConfig &Config) {
  return checkSoundnessExhaustiveParallel(
      Op,
      [Op, Width, Mul](const Tnum &P, const Tnum &Q) {
        return applyAbstractBinary(Op, P, Q, Width, Mul);
      },
      Width, Config);
}

OptimalityReport
tnums::checkOptimalityExhaustiveParallel(BinaryOp Op, unsigned Width,
                                         MulAlgorithm Mul,
                                         const SweepConfig &Config,
                                         bool StopAtFirst) {
  SweepGrid Grid = makeSweepGrid(Width, Config);
  return checkOptimalityRangeParallel(Op, Mul, Grid, 0, Grid.TotalPairs,
                                      Config, StopAtFirst);
}

MonotonicityReport
tnums::checkMonotonicityExhaustiveParallel(BinaryOp Op, unsigned Width,
                                           MulAlgorithm Mul,
                                           const SweepConfig &Config) {
  SweepGrid Grid = makeSweepGrid(Width, Config);
  return checkMonotonicityRangeParallel(Op, Mul, Grid, 0, Grid.TotalPairs,
                                        Config);
}

void tnums::forEachIndexRangeParallel(
    uint64_t Begin, uint64_t End, const SweepConfig &Config,
    const std::function<void(uint64_t, uint64_t)> &Fn) {
  assert(Begin <= End && "bad index range");
  uint64_t ChunkSize = std::max<uint64_t>(1, Config.ChunkPairs);
  uint64_t NumChunks = (End - Begin + ChunkSize - 1) / ChunkSize;
  runOnPool(Config, NumChunks, [&](uint64_t Chunk) {
    uint64_t ChunkBegin = Begin + Chunk * ChunkSize;
    Fn(ChunkBegin, std::min(End, ChunkBegin + ChunkSize));
  });
}

void tnums::forEachIndexRangeParallel(
    uint64_t Total, const SweepConfig &Config,
    const std::function<void(uint64_t, uint64_t)> &Fn) {
  forEachIndexRangeParallel(0, Total, Config, Fn);
}
