//===- verify/ParallelSweep.cpp - Parallel exhaustive verification --------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "verify/ParallelSweep.h"

#include "support/Atomic.h"
#include "support/ChunkSchedule.h"
#include "tnum/TnumEnum.h"
#include "tnum/TnumMembers.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <map>
#include <mutex>

using namespace tnums;

namespace {

/// The row-major (P, Q) pair grid a sweep walks, pre-chunked. Pair index
/// I maps to P = Universe[I / N], Q = Universe[I % N] -- the exact order
/// the serial checkers use, which is what makes "minimum failing chunk,
/// first failure inside it" equal the serial witness.
struct PairGrid {
  std::vector<Tnum> Universe;
  uint64_t NumTnums;
  uint64_t TotalPairs;
  uint64_t ChunkPairs;
  uint64_t NumChunks;
};

PairGrid makeGrid(unsigned Width, const SweepConfig &Config) {
  PairGrid Grid;
  Grid.Universe = allWellFormedTnums(Width);
  Grid.NumTnums = Grid.Universe.size();
  Grid.TotalPairs = Grid.NumTnums * Grid.NumTnums;
  Grid.ChunkPairs = std::max<uint64_t>(1, Config.ChunkPairs);
  Grid.NumChunks = (Grid.TotalPairs + Grid.ChunkPairs - 1) / Grid.ChunkPairs;
  return Grid;
}

/// Runs \p Fn(ChunkIndex) over [0, NumChunks) on the shared
/// chunk-scheduling loop (support/ChunkSchedule.h); the sweeps carry no
/// per-worker state, so the worker slot is a placeholder.
void runOnPool(const SweepConfig &Config, uint64_t NumChunks,
               const std::function<void(uint64_t)> &Fn) {
  forEachChunkOnPool(
      Config.NumThreads, NumChunks, [] { return 0; },
      [&Fn](uint64_t Chunk, int &) { Fn(Chunk); });
}

/// The chunk / first-fail-chunk cancellation protocol, shared by the three
/// sweeps (soundness, optimality, monotonicity) that used to each carry a
/// near-verbatim copy. Templated on the counterexample type, a chunk-local
/// counter block (which doubles as per-chunk scratch -- e.g. the gamma(Q)
/// staging buffer -- since one instance lives per chunk, never shared
/// across threads), and the per-pair body.
///
///   Body(Index, P, Q, Local) -> std::optional<CounterexampleT>
///   Merge(Local)             -- fold the chunk's counters into the totals
///
/// With \p CancelOnFailure (the soundness protocol) a failing chunk stops
/// at its own first violation, chunks strictly above the lowest failing
/// chunk are cancelled, and chunks at or below it always finish -- so the
/// returned counterexample is the serial row-major first one. Without it
/// (optimality's exact-count mode) every chunk full-scans and only the
/// lowest chunk's first witness is kept; the result is the serial-order
/// first counterexample either way.
template <typename CounterexampleT, typename LocalT, typename BodyT,
          typename MergeT>
std::optional<CounterexampleT>
sweepPairGrid(const PairGrid &Grid, const SweepConfig &Config,
              bool CancelOnFailure, const BodyT &Body, const MergeT &Merge) {
  // Lowest chunk index with a violation; the final value's witness is the
  // serial-order first counterexample.
  std::atomic<uint64_t> FirstFailChunk{UINT64_MAX};
  std::mutex FailuresMutex;
  std::map<uint64_t, CounterexampleT> FailureByChunk;

  runOnPool(Config, Grid.NumChunks, [&](uint64_t Chunk) {
    if (CancelOnFailure &&
        Chunk > FirstFailChunk.load(std::memory_order_acquire))
      return;
    uint64_t Begin = Chunk * Grid.ChunkPairs;
    uint64_t End = std::min(Grid.TotalPairs, Begin + Grid.ChunkPairs);
    LocalT Local{};
    bool ChunkHasFailure = false;
    for (uint64_t Index = Begin; Index != End; ++Index) {
      if (CancelOnFailure &&
          Chunk > FirstFailChunk.load(std::memory_order_relaxed))
        break;
      const Tnum &P = Grid.Universe[Index / Grid.NumTnums];
      const Tnum &Q = Grid.Universe[Index % Grid.NumTnums];
      std::optional<CounterexampleT> Failure = Body(Index, P, Q, Local);
      if (Failure && !ChunkHasFailure) {
        ChunkHasFailure = true;
        {
          std::lock_guard<std::mutex> Lock(FailuresMutex);
          FailureByChunk.emplace(Chunk, std::move(*Failure));
        }
        atomicMinU64(FirstFailChunk, Chunk);
      }
      if (ChunkHasFailure && CancelOnFailure)
        break; // This chunk's first (= serial-order) violation is recorded.
    }
    Merge(Local);
  });

  std::lock_guard<std::mutex> Lock(FailuresMutex);
  if (FailureByChunk.empty())
    return std::nullopt;
  return std::move(FailureByChunk.begin()->second); // Lowest chunk index.
}

/// The memoized member table when the batched path is on and the whole
/// universe's gamma fits the configured budget; disengaged otherwise.
std::optional<MemberTable> makeMemberTable(const PairGrid &Grid,
                                           unsigned Width, bool Batched,
                                           const SweepConfig &Config) {
  std::optional<MemberTable> Members;
  if (Batched && Config.MemberTableBytesCap &&
      memberTableBytes(Width) <= Config.MemberTableBytesCap)
    Members.emplace(Grid.Universe);
  return Members;
}

/// Resolves gamma(Q) for one pair: from the memoized table when present,
/// else materialized into the chunk-local staging buffer \p Ys.
std::pair<const uint64_t *, uint64_t>
resolveMembers(const std::optional<MemberTable> &Members, uint64_t QIndex,
               const Tnum &Q, std::vector<uint64_t> &Ys) {
  if (Members)
    return {Members->members(QIndex), Members->numMembers(QIndex)};
  materializeMembers(Q, Ys);
  return {Ys.data(), Ys.size()};
}

} // namespace

SoundnessReport tnums::checkSoundnessExhaustiveParallel(
    BinaryOp Concrete, const AbstractBinaryFn &Abstract, unsigned Width,
    const SweepConfig &Config) {
  assert((!isShiftOp(Concrete) || (Width & (Width - 1)) == 0) &&
         "shift verification requires a power-of-two width");
  PairGrid Grid = makeGrid(Width, Config);

  std::atomic<uint64_t> PairsChecked{0};
  std::atomic<uint64_t> ConcreteChecked{0};

  const bool Batched = simdModeBatches(Config.Simd);
  const SimdKernels &Kernels = selectSimdKernels(Config.Simd);
  std::optional<MemberTable> Members =
      makeMemberTable(Grid, Width, Batched, Config);

  struct Local {
    uint64_t Pairs = 0;
    uint64_t Concrete = 0;
    // Chunk-local gamma(Q) staging buffer for the non-memoized batched
    // path; refilled per pair, capacity retained across the chunk.
    std::vector<uint64_t> Ys;
  };

  std::optional<SoundnessCounterexample> Failure =
      sweepPairGrid<SoundnessCounterexample, Local>(
          Grid, Config, /*CancelOnFailure=*/true,
          [&](uint64_t Index, const Tnum &P, const Tnum &Q,
              Local &L) -> std::optional<SoundnessCounterexample> {
            ++L.Pairs;
            Tnum R = Abstract(P, Q);
            if (Batched) {
              auto [Ys, NumYs] =
                  resolveMembers(Members, Index % Grid.NumTnums, Q, L.Ys);
              return scanPairMembersBatched(Concrete, Width, P, Q, R, Ys,
                                            NumYs, Kernels, L.Concrete);
            }
            std::optional<SoundnessCounterexample> Violation;
            forEachMember(P, [&](uint64_t X) {
              if (Violation)
                return;
              forEachMember(Q, [&](uint64_t Y) {
                if (Violation)
                  return;
                ++L.Concrete;
                uint64_t Z = applyConcreteBinary(Concrete, X, Y, Width);
                if (!R.contains(Z))
                  Violation = SoundnessCounterexample{P, Q, X, Y, Z, R};
              });
            });
            return Violation;
          },
          [&](const Local &L) {
            PairsChecked.fetch_add(L.Pairs, std::memory_order_relaxed);
            ConcreteChecked.fetch_add(L.Concrete, std::memory_order_relaxed);
          });

  SoundnessReport Report;
  Report.PairsChecked = PairsChecked.load();
  Report.ConcreteChecked = ConcreteChecked.load();
  Report.Failure = std::move(Failure);
  return Report;
}

SoundnessReport
tnums::checkSoundnessExhaustiveParallel(BinaryOp Op, unsigned Width,
                                        MulAlgorithm Mul,
                                        const SweepConfig &Config) {
  return checkSoundnessExhaustiveParallel(
      Op,
      [Op, Width, Mul](const Tnum &P, const Tnum &Q) {
        return applyAbstractBinary(Op, P, Q, Width, Mul);
      },
      Width, Config);
}

OptimalityReport
tnums::checkOptimalityExhaustiveParallel(BinaryOp Op, unsigned Width,
                                         MulAlgorithm Mul,
                                         const SweepConfig &Config,
                                         bool StopAtFirst) {
  assert((!isShiftOp(Op) || (Width & (Width - 1)) == 0) &&
         "shift verification requires a power-of-two width");
  PairGrid Grid = makeGrid(Width, Config);

  std::atomic<uint64_t> PairsChecked{0};
  std::atomic<uint64_t> OptimalPairs{0};

  const bool Batched = simdModeBatches(Config.Simd);
  const SimdKernels &Kernels = selectSimdKernels(Config.Simd);
  std::optional<MemberTable> Members =
      makeMemberTable(Grid, Width, Batched, Config);

  struct Local {
    uint64_t Pairs = 0;
    uint64_t Optimal = 0;
    std::vector<uint64_t> Ys;
  };

  // StopAtFirst selects the soundness cancellation protocol (early exit,
  // scheduling-dependent counts on failure); the default full-scan keeps
  // OptimalPairs / PairsChecked exact grid totals. Either way the witness
  // is the serial-order first non-optimal pair.
  std::optional<OptimalityCounterexample> Failure =
      sweepPairGrid<OptimalityCounterexample, Local>(
          Grid, Config, /*CancelOnFailure=*/StopAtFirst,
          [&](uint64_t Index, const Tnum &P, const Tnum &Q,
              Local &L) -> std::optional<OptimalityCounterexample> {
            ++L.Pairs;
            Tnum Actual = applyAbstractBinary(Op, P, Q, Width, Mul);
            Tnum Optimal;
            if (Batched) {
              auto [Ys, NumYs] =
                  resolveMembers(Members, Index % Grid.NumTnums, Q, L.Ys);
              Optimal = optimalAbstractBinaryBatched(Op, Width, P, Ys, NumYs,
                                                     Kernels);
            } else {
              Optimal = optimalAbstractBinary(Op, P, Q, Width);
            }
            if (Actual == Optimal) {
              ++L.Optimal;
              return std::nullopt;
            }
            return OptimalityCounterexample{P, Q, Actual, Optimal};
          },
          [&](const Local &L) {
            PairsChecked.fetch_add(L.Pairs, std::memory_order_relaxed);
            OptimalPairs.fetch_add(L.Optimal, std::memory_order_relaxed);
          });

  OptimalityReport Report;
  Report.PairsChecked = PairsChecked.load();
  Report.OptimalPairs = OptimalPairs.load();
  Report.Failure = std::move(Failure);
  return Report;
}

MonotonicityReport
tnums::checkMonotonicityExhaustiveParallel(BinaryOp Op, unsigned Width,
                                           MulAlgorithm Mul,
                                           const SweepConfig &Config) {
  assert((!isShiftOp(Op) || (Width & (Width - 1)) == 0) &&
         "shift verification requires a power-of-two width");
  PairGrid Grid = makeGrid(Width, Config);

  std::atomic<uint64_t> QuadruplesChecked{0};

  struct Local {
    uint64_t Quadruples = 0;
  };

  std::optional<MonotonicityCounterexample> Failure =
      sweepPairGrid<MonotonicityCounterexample, Local>(
          Grid, Config, /*CancelOnFailure=*/true,
          [&](uint64_t, const Tnum &P2, const Tnum &Q2,
              Local &L) -> std::optional<MonotonicityCounterexample> {
            Tnum R2 = applyAbstractBinary(Op, P2, Q2, Width, Mul);
            std::optional<MonotonicityCounterexample> Violation;
            forEachSubTnum(P2, [&](Tnum P1) {
              if (Violation)
                return;
              forEachSubTnum(Q2, [&](Tnum Q1) {
                if (Violation)
                  return;
                ++L.Quadruples;
                Tnum R1 = applyAbstractBinary(Op, P1, Q1, Width, Mul);
                if (!R1.isSubsetOf(R2))
                  Violation =
                      MonotonicityCounterexample{P1, Q1, P2, Q2, R1, R2};
              });
            });
            return Violation;
          },
          [&](const Local &L) {
            QuadruplesChecked.fetch_add(L.Quadruples,
                                        std::memory_order_relaxed);
          });

  MonotonicityReport Report;
  Report.QuadruplesChecked = QuadruplesChecked.load();
  Report.Failure = std::move(Failure);
  return Report;
}

void tnums::forEachIndexRangeParallel(
    uint64_t Total, const SweepConfig &Config,
    const std::function<void(uint64_t, uint64_t)> &Fn) {
  uint64_t ChunkSize = std::max<uint64_t>(1, Config.ChunkPairs);
  uint64_t NumChunks = (Total + ChunkSize - 1) / ChunkSize;
  runOnPool(Config, NumChunks, [&](uint64_t Chunk) {
    uint64_t Begin = Chunk * ChunkSize;
    Fn(Begin, std::min(Total, Begin + ChunkSize));
  });
}

std::vector<MulSweepResult>
tnums::sweepMulSoundness(const std::vector<unsigned> &Widths,
                         const SweepConfig &Config) {
  std::vector<MulSweepResult> Results;
  Results.reserve(Widths.size() * std::size(AllMulAlgorithms));
  for (unsigned Width : Widths) {
    for (MulAlgorithm Algorithm : AllMulAlgorithms) {
      auto Start = std::chrono::steady_clock::now();
      SoundnessReport Report =
          checkSoundnessExhaustiveParallel(BinaryOp::Mul, Width, Algorithm,
                                           Config);
      std::chrono::duration<double> Elapsed =
          std::chrono::steady_clock::now() - Start;
      Results.push_back({Algorithm, Width, Report, Elapsed.count()});
    }
  }
  return Results;
}
