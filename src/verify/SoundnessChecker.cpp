//===- verify/SoundnessChecker.cpp - Bounded soundness verification -------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "verify/SoundnessChecker.h"

#include "support/Random.h"
#include "support/Table.h"
#include "tnum/TnumEnum.h"

using namespace tnums;

std::string SoundnessCounterexample::toString(unsigned Width) const {
  return formatString(
      "P=%s Q=%s x=%llu y=%llu z=%llu not in R=%s",
      P.toString(Width).c_str(), Q.toString(Width).c_str(),
      static_cast<unsigned long long>(X), static_cast<unsigned long long>(Y),
      static_cast<unsigned long long>(Z), R.toString(Width).c_str());
}

/// Checks every concrete pair drawn from (P, Q) against R; records the
/// first violation into \p Report and returns false on violation.
static bool checkAllMembers(BinaryOp Op, unsigned Width, const Tnum &P,
                            const Tnum &Q, const Tnum &R,
                            SoundnessReport &Report) {
  bool Sound = true;
  forEachMember(P, [&](uint64_t X) {
    if (!Sound)
      return;
    forEachMember(Q, [&](uint64_t Y) {
      if (!Sound)
        return;
      ++Report.ConcreteChecked;
      uint64_t Z = applyConcreteBinary(Op, X, Y, Width);
      if (!R.contains(Z)) {
        Report.Failure = SoundnessCounterexample{P, Q, X, Y, Z, R};
        Sound = false;
      }
    });
  });
  return Sound;
}

SoundnessReport tnums::checkSoundnessExhaustive(BinaryOp Op, unsigned Width,
                                                MulAlgorithm Mul) {
  assert((!isShiftOp(Op) || (Width & (Width - 1)) == 0) &&
         "shift verification requires a power-of-two width");
  SoundnessReport Report;
  std::vector<Tnum> Universe = allWellFormedTnums(Width);
  for (const Tnum &P : Universe) {
    for (const Tnum &Q : Universe) {
      ++Report.PairsChecked;
      Tnum R = applyAbstractBinary(Op, P, Q, Width, Mul);
      if (!checkAllMembers(Op, Width, P, Q, R, Report))
        return Report;
    }
  }
  return Report;
}

Tnum tnums::randomWellFormedTnum(Xoshiro256 &Rng, unsigned Width) {
  uint64_t WidthMask = lowBitsMask(Width);
  uint64_t Mask = Rng.next() & WidthMask;
  uint64_t Value = Rng.next() & WidthMask & ~Mask;
  return Tnum(Value, Mask);
}

SoundnessReport tnums::checkSoundnessRandom(BinaryOp Op, unsigned Width,
                                            uint64_t NumPairs,
                                            unsigned SamplesPerPair,
                                            Xoshiro256 &Rng,
                                            MulAlgorithm Mul) {
  assert((!isShiftOp(Op) || (Width & (Width - 1)) == 0) &&
         "shift verification requires a power-of-two width");
  SoundnessReport Report;
  for (uint64_t I = 0; I != NumPairs; ++I) {
    Tnum P = randomWellFormedTnum(Rng, Width);
    Tnum Q = randomWellFormedTnum(Rng, Width);
    ++Report.PairsChecked;
    Tnum R = applyAbstractBinary(Op, P, Q, Width, Mul);

    auto CheckOne = [&](uint64_t X, uint64_t Y) {
      ++Report.ConcreteChecked;
      uint64_t Z = applyConcreteBinary(Op, X, Y, Width);
      if (!R.contains(Z) && !Report.Failure)
        Report.Failure = SoundnessCounterexample{P, Q, X, Y, Z, R};
    };

    // Corner members first: the extremes of each concretization are where
    // carry/borrow chains behave most differently (Lemmas 2/3 pick exactly
    // these points).
    uint64_t CornersP[2] = {P.minMember(), P.maxMember()};
    uint64_t CornersQ[2] = {Q.minMember(), Q.maxMember()};
    for (uint64_t X : CornersP)
      for (uint64_t Y : CornersQ)
        CheckOne(X, Y);

    for (unsigned S = 0; S != SamplesPerPair; ++S) {
      uint64_t X = P.value() | (Rng.next() & P.mask());
      uint64_t Y = Q.value() | (Rng.next() & Q.mask());
      CheckOne(X, Y);
    }
    if (Report.Failure)
      return Report;
  }
  return Report;
}
