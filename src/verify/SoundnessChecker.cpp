//===- verify/SoundnessChecker.cpp - Bounded soundness verification -------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "verify/SoundnessChecker.h"

#include "support/Random.h"
#include "support/Table.h"
#include "tnum/TnumEnum.h"
#include "tnum/TnumMembers.h"

#include <algorithm>
#include <bit>

#if TNUMS_SIMD_HAVE_X86_KERNELS
#include <immintrin.h>
#endif

using namespace tnums;

std::string SoundnessCounterexample::toString(unsigned Width) const {
  return formatString(
      "P=%s Q=%s x=%llu y=%llu z=%llu not in R=%s",
      P.toString(Width).c_str(), Q.toString(Width).c_str(),
      static_cast<unsigned long long>(X), static_cast<unsigned long long>(Y),
      static_cast<unsigned long long>(Z), R.toString(Width).c_str());
}

/// Checks every concrete pair drawn from (P, Q) against R; records the
/// first violation into \p Report and returns false on violation.
static bool checkAllMembers(BinaryOp Op, unsigned Width, const Tnum &P,
                            const Tnum &Q, const Tnum &R,
                            SoundnessReport &Report) {
  bool Sound = true;
  forEachMember(P, [&](uint64_t X) {
    if (!Sound)
      return;
    forEachMember(Q, [&](uint64_t Y) {
      if (!Sound)
        return;
      ++Report.ConcreteChecked;
      uint64_t Z = applyConcreteBinary(Op, X, Y, Width);
      if (!R.contains(Z)) {
        Report.Failure = SoundnessCounterexample{P, Q, X, Y, Z, R};
        Sound = false;
      }
    });
  });
  return Sound;
}

//===----------------------------------------------------------------------===//
// Fused evaluate-and-test scan
//
// The generic batched path materializes each batch of concrete results
// into a stack buffer (applyConcreteBinaryBatch) and then runs the
// membership kernel over it. For the hot wrap-around operators the two
// passes fuse: compute Z in a register and compare it in place, skipping
// the round trip through memory. On a violation only the occupancy mask
// survives; the caller recomputes the one concrete Z scalar (violations
// end the whole sweep, so that cost is unobservable).
//
// Preconditions shared with scanPairMembersBatched: X and every Ys[j]
// already fit the width (they are members of width-fitting tnums), which
// is what lets add/sub/mul get by with a single result mask and the
// bitwise ops with none.
//===----------------------------------------------------------------------===//

namespace {

/// True when \p Op at \p Width has a fused AVX2 scan loop below. The
/// multiplication loop computes 64-bit lanes with a 32x32 low multiply,
/// exact only while both operands and the product stay under 2^32 -- i.e.
/// Width <= 16, which covers every enumerable sweep width.
bool hasFusedScan(BinaryOp Op, unsigned Width) {
  switch (Op) {
  case BinaryOp::Add:
  case BinaryOp::Sub:
  case BinaryOp::And:
  case BinaryOp::Or:
  case BinaryOp::Xor:
    return true;
  case BinaryOp::Mul:
    return Width <= 16;
  default:
    return false;
  }
}

#if TNUMS_SIMD_HAVE_X86_KERNELS

/// Membership test of four already-computed result lanes: the 4-bit
/// failure mask of Z against (V, NotM), exactly like SimdBatch's
/// nonMemberMaskAvx2 inner step.
__attribute__((target("avx2"), always_inline)) inline unsigned
laneFailures(__m256i Z, __m256i NotMv, __m256i Vv) {
  __m256i Eq = _mm256_cmpeq_epi64(_mm256_and_si256(Z, NotMv), Vv);
  unsigned Members =
      static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(Eq)));
  return ~Members & 0xF;
}

/// Fused AVX2 scan: returns the non-member occupancy mask of
/// opC(X, Ys[j]) against (V, NotM) over N <= 64 lanes, without
/// materializing the results. Only called for ops where
/// hasFusedScan() holds and after cpuHasAvx2() gating.
__attribute__((target("avx2"))) uint64_t
fusedNonMemberScanAvx2(BinaryOp Op, uint64_t X, const uint64_t *Ys,
                       unsigned N, uint64_t WMask, uint64_t V,
                       uint64_t NotM) {
  const __m256i Xv = _mm256_set1_epi64x(static_cast<long long>(X));
  const __m256i WMaskv = _mm256_set1_epi64x(static_cast<long long>(WMask));
  const __m256i Vv = _mm256_set1_epi64x(static_cast<long long>(V));
  const __m256i NotMv = _mm256_set1_epi64x(static_cast<long long>(NotM));
  uint64_t Mask = 0;
  unsigned I = 0;

  // Per-op vector loops (the dispatch runs once per call, i.e. once per
  // <= 64 evaluations).
  switch (Op) {
  case BinaryOp::Add:
    for (; I + 4 <= N; I += 4) {
      __m256i Y = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Ys + I));
      __m256i Z = _mm256_and_si256(_mm256_add_epi64(Xv, Y), WMaskv);
      Mask |= uint64_t(laneFailures(Z, NotMv, Vv)) << I;
    }
    break;
  case BinaryOp::Sub:
    for (; I + 4 <= N; I += 4) {
      __m256i Y = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Ys + I));
      __m256i Z = _mm256_and_si256(_mm256_sub_epi64(Xv, Y), WMaskv);
      Mask |= uint64_t(laneFailures(Z, NotMv, Vv)) << I;
    }
    break;
  case BinaryOp::Mul:
    // Lanes hold width <= 16 values: the high 32 bits of every lane are
    // zero, so an 8x32-bit low multiply yields the exact 64-bit products
    // (odd 32-bit elements multiply 0 * 0).
    for (; I + 4 <= N; I += 4) {
      __m256i Y = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Ys + I));
      __m256i Z = _mm256_and_si256(_mm256_mullo_epi32(Xv, Y), WMaskv);
      Mask |= uint64_t(laneFailures(Z, NotMv, Vv)) << I;
    }
    break;
  case BinaryOp::And:
    for (; I + 4 <= N; I += 4) {
      __m256i Y = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Ys + I));
      Mask |= uint64_t(laneFailures(_mm256_and_si256(Xv, Y), NotMv, Vv)) << I;
    }
    break;
  case BinaryOp::Or:
    for (; I + 4 <= N; I += 4) {
      __m256i Y = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Ys + I));
      Mask |= uint64_t(laneFailures(_mm256_or_si256(Xv, Y), NotMv, Vv)) << I;
    }
    break;
  case BinaryOp::Xor:
    for (; I + 4 <= N; I += 4) {
      __m256i Y = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Ys + I));
      Mask |= uint64_t(laneFailures(_mm256_xor_si256(Xv, Y), NotMv, Vv)) << I;
    }
    break;
  default:
    assert(false && "op has no fused scan loop");
  }

  // Scalar tail (N is rarely a multiple of 4 at small widths).
  for (; I != N; ++I) {
    uint64_t Z;
    switch (Op) {
    case BinaryOp::Add:
      Z = (X + Ys[I]) & WMask;
      break;
    case BinaryOp::Sub:
      Z = (X - Ys[I]) & WMask;
      break;
    case BinaryOp::Mul:
      Z = (X * Ys[I]) & WMask;
      break;
    case BinaryOp::And:
      Z = X & Ys[I];
      break;
    case BinaryOp::Or:
      Z = X | Ys[I];
      break;
    case BinaryOp::Xor:
      Z = X ^ Ys[I];
      break;
    default:
      assert(false && "op has no fused scan tail");
      Z = 0;
      break;
    }
    Mask |= uint64_t((Z & NotM) != V) << I;
  }
  return Mask;
}

#endif // TNUMS_SIMD_HAVE_X86_KERNELS

/// Whether the (Kernels, Op, Width) combination routes through the fused
/// AVX2 scan instead of the two-pass batch + membership kernel.
bool useFusedScan(const SimdKernels &Kernels, BinaryOp Op, unsigned Width) {
#if TNUMS_SIMD_HAVE_X86_KERNELS
  return &Kernels == avx2SimdKernels() && hasFusedScan(Op, Width);
#else
  (void)Kernels;
  (void)Op;
  (void)Width;
  return false;
#endif
}

} // namespace

std::optional<SoundnessCounterexample> tnums::scanPairMembersBatched(
    BinaryOp Op, unsigned Width, const Tnum &P, const Tnum &Q, const Tnum &R,
    const uint64_t *Ys, uint64_t NumYs, const SimdKernels &Kernels,
    uint64_t &ConcreteChecked) {
  if (P.isBottom() || NumYs == 0)
    return std::nullopt; // Empty gamma on either side: nothing to scan.
  // (Z & ~R.m) == R.v is Tnum::contains without the well-formedness
  // branch: an ill-formed R has a value bit inside its mask, making the
  // compare false in every lane, which is exactly "bottom contains
  // nothing".
  const uint64_t V = R.value();
  const uint64_t NotM = ~R.mask();
  const uint64_t WMask = lowBitsMask(Width);
  const bool Fused = useFusedScan(Kernels, Op, Width);
  alignas(SimdBatchAlign) uint64_t Zs[SimdBatchLanes];
  std::optional<SoundnessCounterexample> Result;
  // X walks gamma(P) through the one canonical member enumerator; only
  // the Y axis is batched. A violation ends the whole sweep, so the
  // remaining no-op visits after one is found cost nothing that matters.
  forEachMember(P, [&](uint64_t X) {
    if (Result)
      return;
    for (uint64_t Base = 0; Base < NumYs; Base += SimdBatchLanes) {
      unsigned N = static_cast<unsigned>(
          std::min<uint64_t>(SimdBatchLanes, NumYs - Base));
      uint64_t Bad;
#if TNUMS_SIMD_HAVE_X86_KERNELS
      if (Fused) {
        Bad = fusedNonMemberScanAvx2(Op, X, Ys + Base, N, WMask, V, NotM);
      } else {
        applyConcreteBinaryBatch(Op, X, Ys + Base, Zs, N, Width);
        Bad = Kernels.NonMemberMask(Zs, N, V, NotM);
      }
#else
      (void)Fused;
      (void)WMask;
      applyConcreteBinaryBatch(Op, X, Ys + Base, Zs, N, Width);
      Bad = Kernels.NonMemberMask(Zs, N, V, NotM);
#endif
      if (Bad) {
        // The scalar scan counts each evaluation before testing it, so a
        // violation at batch offset J has consumed Base + J + 1 of this
        // X's evaluations.
        unsigned J = static_cast<unsigned>(std::countr_zero(Bad));
        uint64_t Y = Ys[Base + J];
        // The fused path never materializes Z; recompute the single
        // witness value (a violation terminates the whole sweep).
        uint64_t Z = Fused ? applyConcreteBinary(Op, X, Y, Width) : Zs[J];
        ConcreteChecked += Base + J + 1;
        Result = SoundnessCounterexample{P, Q, X, Y, Z, R};
        return;
      }
    }
    ConcreteChecked += NumYs;
  });
  return Result;
}

SoundnessReport tnums::checkSoundnessExhaustive(BinaryOp Op, unsigned Width,
                                                MulAlgorithm Mul,
                                                SimdMode Simd) {
  assert((!isShiftOp(Op) || (Width & (Width - 1)) == 0) &&
         "shift verification requires a power-of-two width");
  SoundnessReport Report;
  std::vector<Tnum> Universe = allWellFormedTnums(Width);
  const bool Batched = simdModeBatches(Simd);
  const SimdKernels &Kernels = selectSimdKernels(Simd);
  std::vector<uint64_t> Ys;
  for (const Tnum &P : Universe) {
    for (const Tnum &Q : Universe) {
      ++Report.PairsChecked;
      Tnum R = applyAbstractBinary(Op, P, Q, Width, Mul);
      if (Batched) {
        materializeMembers(Q, Ys);
        Report.Failure = scanPairMembersBatched(Op, Width, P, Q, R, Ys.data(),
                                                Ys.size(), Kernels,
                                                Report.ConcreteChecked);
        if (Report.Failure)
          return Report;
      } else if (!checkAllMembers(Op, Width, P, Q, R, Report)) {
        return Report;
      }
    }
  }
  return Report;
}

Tnum tnums::randomWellFormedTnum(Xoshiro256 &Rng, unsigned Width) {
  uint64_t WidthMask = lowBitsMask(Width);
  uint64_t Mask = Rng.next() & WidthMask;
  uint64_t Value = Rng.next() & WidthMask & ~Mask;
  return Tnum(Value, Mask);
}

SoundnessReport tnums::checkSoundnessRandom(BinaryOp Op, unsigned Width,
                                            uint64_t NumPairs,
                                            unsigned SamplesPerPair,
                                            Xoshiro256 &Rng,
                                            MulAlgorithm Mul) {
  assert((!isShiftOp(Op) || (Width & (Width - 1)) == 0) &&
         "shift verification requires a power-of-two width");
  SoundnessReport Report;
  for (uint64_t I = 0; I != NumPairs; ++I) {
    Tnum P = randomWellFormedTnum(Rng, Width);
    Tnum Q = randomWellFormedTnum(Rng, Width);
    ++Report.PairsChecked;
    Tnum R = applyAbstractBinary(Op, P, Q, Width, Mul);

    auto CheckOne = [&](uint64_t X, uint64_t Y) {
      ++Report.ConcreteChecked;
      uint64_t Z = applyConcreteBinary(Op, X, Y, Width);
      if (!R.contains(Z) && !Report.Failure)
        Report.Failure = SoundnessCounterexample{P, Q, X, Y, Z, R};
    };

    // Corner members first: the extremes of each concretization are where
    // carry/borrow chains behave most differently (Lemmas 2/3 pick exactly
    // these points).
    uint64_t CornersP[2] = {P.minMember(), P.maxMember()};
    uint64_t CornersQ[2] = {Q.minMember(), Q.maxMember()};
    for (uint64_t X : CornersP)
      for (uint64_t Y : CornersQ)
        CheckOne(X, Y);

    for (unsigned S = 0; S != SamplesPerPair; ++S) {
      uint64_t X = P.value() | (Rng.next() & P.mask());
      uint64_t Y = Q.value() | (Rng.next() & Q.mask());
      CheckOne(X, Y);
    }
    if (Report.Failure)
      return Report;
  }
  return Report;
}
