//===- verify/SoundnessChecker.cpp - Bounded soundness verification -------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "verify/SoundnessChecker.h"

#include "support/Random.h"
#include "support/Table.h"
#include "tnum/TnumEnum.h"
#include "tnum/TnumMembers.h"

#include <algorithm>
#include <bit>

#if TNUMS_SIMD_HAVE_X86_KERNELS
#include <immintrin.h>
#endif
#if TNUMS_SIMD_HAVE_NEON_KERNELS
#include <arm_neon.h>
#endif

using namespace tnums;

std::string SoundnessCounterexample::toString(unsigned Width) const {
  return formatString(
      "P=%s Q=%s x=%llu y=%llu z=%llu not in R=%s",
      P.toString(Width).c_str(), Q.toString(Width).c_str(),
      static_cast<unsigned long long>(X), static_cast<unsigned long long>(Y),
      static_cast<unsigned long long>(Z), R.toString(Width).c_str());
}

/// Checks every concrete pair drawn from (P, Q) against R; records the
/// first violation into \p Report and returns false on violation.
static bool checkAllMembers(BinaryOp Op, unsigned Width, const Tnum &P,
                            const Tnum &Q, const Tnum &R,
                            SoundnessReport &Report) {
  bool Sound = true;
  forEachMember(P, [&](uint64_t X) {
    if (!Sound)
      return;
    forEachMember(Q, [&](uint64_t Y) {
      if (!Sound)
        return;
      ++Report.ConcreteChecked;
      uint64_t Z = applyConcreteBinary(Op, X, Y, Width);
      if (!R.contains(Z)) {
        Report.Failure = SoundnessCounterexample{P, Q, X, Y, Z, R};
        Sound = false;
      }
    });
  });
  return Sound;
}

//===----------------------------------------------------------------------===//
// Fused evaluate-and-test scan
//
// The generic batched path materializes each batch of concrete results
// into a stack buffer (applyConcreteBinaryBatch) and then runs the
// membership kernel over it. For the hot wrap-around operators the two
// passes fuse: compute Z in a register and compare it in place, skipping
// the round trip through memory. On a violation only the occupancy mask
// survives; the caller recomputes the one concrete Z scalar (violations
// end the whole sweep, so that cost is unobservable).
//
// Preconditions shared with scanPairMembersBatched: X and every Ys[j]
// already fit the width (they are members of width-fitting tnums), which
// is what lets add/sub/mul get by with a single result mask and the
// bitwise ops with none.
//===----------------------------------------------------------------------===//

namespace {

// Op eligibility is the shared hasFusedSimdKernel(Op, Width) predicate in
// verify/Oracle.h (also used by the fused optimality alpha-reduce); the
// loops below exist per tier -- AVX2, AVX-512, and NEON -- and every tier
// computes the same occupancy mask bit for bit.

/// Scalar evaluation of one fused-eligible op, the tail step shared by
/// every tier's scan loop.
inline uint64_t fusedScalarEval(BinaryOp Op, uint64_t X, uint64_t Y,
                                uint64_t WMask) {
  switch (Op) {
  case BinaryOp::Add:
    return (X + Y) & WMask;
  case BinaryOp::Sub:
    return (X - Y) & WMask;
  case BinaryOp::Mul:
    return (X * Y) & WMask;
  case BinaryOp::And:
    return X & Y;
  case BinaryOp::Or:
    return X | Y;
  case BinaryOp::Xor:
    return X ^ Y;
  default:
    assert(false && "op has no fused scan tail");
    return 0;
  }
}

#if TNUMS_SIMD_HAVE_X86_KERNELS

/// Membership test of four already-computed result lanes: the 4-bit
/// failure mask of Z against (V, NotM), exactly like SimdBatch's
/// nonMemberMaskAvx2 inner step.
__attribute__((target("avx2"), always_inline)) inline unsigned
laneFailures(__m256i Z, __m256i NotMv, __m256i Vv) {
  __m256i Eq = _mm256_cmpeq_epi64(_mm256_and_si256(Z, NotMv), Vv);
  unsigned Members =
      static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(Eq)));
  return ~Members & 0xF;
}

/// Fused AVX2 scan: returns the non-member occupancy mask of
/// opC(X, Ys[j]) against (V, NotM) over N <= 64 lanes, without
/// materializing the results. Only called for ops where
/// hasFusedSimdKernel() holds and after cpuHasAvx2() gating.
__attribute__((target("avx2"))) uint64_t
fusedNonMemberScanAvx2(BinaryOp Op, uint64_t X, const uint64_t *Ys,
                       unsigned N, uint64_t WMask, uint64_t V,
                       uint64_t NotM) {
  const __m256i Xv = _mm256_set1_epi64x(static_cast<long long>(X));
  const __m256i WMaskv = _mm256_set1_epi64x(static_cast<long long>(WMask));
  const __m256i Vv = _mm256_set1_epi64x(static_cast<long long>(V));
  const __m256i NotMv = _mm256_set1_epi64x(static_cast<long long>(NotM));
  uint64_t Mask = 0;
  unsigned I = 0;

  // Per-op vector loops (the dispatch runs once per call, i.e. once per
  // <= 64 evaluations).
  switch (Op) {
  case BinaryOp::Add:
    for (; I + 4 <= N; I += 4) {
      __m256i Y = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Ys + I));
      __m256i Z = _mm256_and_si256(_mm256_add_epi64(Xv, Y), WMaskv);
      Mask |= uint64_t(laneFailures(Z, NotMv, Vv)) << I;
    }
    break;
  case BinaryOp::Sub:
    for (; I + 4 <= N; I += 4) {
      __m256i Y = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Ys + I));
      __m256i Z = _mm256_and_si256(_mm256_sub_epi64(Xv, Y), WMaskv);
      Mask |= uint64_t(laneFailures(Z, NotMv, Vv)) << I;
    }
    break;
  case BinaryOp::Mul:
    // Lanes hold width <= 16 values: the high 32 bits of every lane are
    // zero, so an 8x32-bit low multiply yields the exact 64-bit products
    // (odd 32-bit elements multiply 0 * 0).
    for (; I + 4 <= N; I += 4) {
      __m256i Y = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Ys + I));
      __m256i Z = _mm256_and_si256(_mm256_mullo_epi32(Xv, Y), WMaskv);
      Mask |= uint64_t(laneFailures(Z, NotMv, Vv)) << I;
    }
    break;
  case BinaryOp::And:
    for (; I + 4 <= N; I += 4) {
      __m256i Y = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Ys + I));
      Mask |= uint64_t(laneFailures(_mm256_and_si256(Xv, Y), NotMv, Vv)) << I;
    }
    break;
  case BinaryOp::Or:
    for (; I + 4 <= N; I += 4) {
      __m256i Y = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Ys + I));
      Mask |= uint64_t(laneFailures(_mm256_or_si256(Xv, Y), NotMv, Vv)) << I;
    }
    break;
  case BinaryOp::Xor:
    for (; I + 4 <= N; I += 4) {
      __m256i Y = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Ys + I));
      Mask |= uint64_t(laneFailures(_mm256_xor_si256(Xv, Y), NotMv, Vv)) << I;
    }
    break;
  default:
    assert(false && "op has no fused scan loop");
  }

  // Scalar tail (N is rarely a multiple of 4 at small widths).
  for (; I != N; ++I) {
    uint64_t Z = fusedScalarEval(Op, X, Ys[I], WMask);
    Mask |= uint64_t((Z & NotM) != V) << I;
  }
  return Mask;
}

/// Membership test of eight already-computed result lanes: the 8-bit
/// failure group of Z against (V, NotM). Members compare equal and the
/// compare writes a mask REGISTER directly (vpcmpeqq %zmm, %zmm, %k) --
/// the 64->8 lane compression happens in the compare itself, no movemask
/// shuffling. (A separate function, not a lambda: lambdas do not inherit
/// the enclosing function's target attribute.)
__attribute__((target("avx512f,avx512bw"), always_inline)) inline uint64_t
laneFailures512(__m512i Z, __m512i NotMv, __m512i Vv) {
  __mmask8 Members = _mm512_cmpeq_epi64_mask(_mm512_and_si512(Z, NotMv), Vv);
  return uint64_t(static_cast<uint8_t>(~Members));
}

/// Fused AVX-512 scan: 8 lanes per zmm with the mask-register lane
/// compression above. Only called for ops where hasFusedSimdKernel()
/// holds and after cpuHasAvx512() gating.
__attribute__((target("avx512f,avx512bw"))) uint64_t
fusedNonMemberScanAvx512(BinaryOp Op, uint64_t X, const uint64_t *Ys,
                         unsigned N, uint64_t WMask, uint64_t V,
                         uint64_t NotM) {
  const __m512i Xv = _mm512_set1_epi64(static_cast<long long>(X));
  const __m512i WMaskv = _mm512_set1_epi64(static_cast<long long>(WMask));
  const __m512i Vv = _mm512_set1_epi64(static_cast<long long>(V));
  const __m512i NotMv = _mm512_set1_epi64(static_cast<long long>(NotM));
  uint64_t Mask = 0;
  unsigned I = 0;

  switch (Op) {
  case BinaryOp::Add:
    for (; I + 8 <= N; I += 8) {
      __m512i Y = _mm512_loadu_si512(Ys + I);
      Mask |= laneFailures512(_mm512_and_si512(_mm512_add_epi64(Xv, Y), WMaskv), NotMv, Vv) << I;
    }
    break;
  case BinaryOp::Sub:
    for (; I + 8 <= N; I += 8) {
      __m512i Y = _mm512_loadu_si512(Ys + I);
      Mask |= laneFailures512(_mm512_and_si512(_mm512_sub_epi64(Xv, Y), WMaskv), NotMv, Vv) << I;
    }
    break;
  case BinaryOp::Mul:
    // Width <= 16 lanes: high 32 bits zero, so the 32-bit low multiply
    // yields the exact 64-bit products (odd elements multiply 0 * 0).
    for (; I + 8 <= N; I += 8) {
      __m512i Y = _mm512_loadu_si512(Ys + I);
      Mask |= laneFailures512(_mm512_and_si512(_mm512_mullo_epi32(Xv, Y), WMaskv), NotMv, Vv) << I;
    }
    break;
  case BinaryOp::And:
    for (; I + 8 <= N; I += 8) {
      __m512i Y = _mm512_loadu_si512(Ys + I);
      Mask |= laneFailures512(_mm512_and_si512(Xv, Y), NotMv, Vv) << I;
    }
    break;
  case BinaryOp::Or:
    for (; I + 8 <= N; I += 8) {
      __m512i Y = _mm512_loadu_si512(Ys + I);
      Mask |= laneFailures512(_mm512_or_si512(Xv, Y), NotMv, Vv) << I;
    }
    break;
  case BinaryOp::Xor:
    for (; I + 8 <= N; I += 8) {
      __m512i Y = _mm512_loadu_si512(Ys + I);
      Mask |= laneFailures512(_mm512_xor_si512(Xv, Y), NotMv, Vv) << I;
    }
    break;
  default:
    assert(false && "op has no fused scan loop");
  }

  for (; I != N; ++I) {
    uint64_t Z = fusedScalarEval(Op, X, Ys[I], WMask);
    Mask |= uint64_t((Z & NotM) != V) << I;
  }
  return Mask;
}

#endif // TNUMS_SIMD_HAVE_X86_KERNELS

#if TNUMS_SIMD_HAVE_NEON_KERNELS

/// Fused NEON scan: 2 qword lanes per q-register; vceqq yields
/// all-ones-per-member-lane and the lane LSBs fold into the occupancy
/// mask. Compiled on AArch64 only (Advanced SIMD is baseline there).
uint64_t fusedNonMemberScanNeon(BinaryOp Op, uint64_t X, const uint64_t *Ys,
                                unsigned N, uint64_t WMask, uint64_t V,
                                uint64_t NotM) {
  const uint64x2_t Xv = vdupq_n_u64(X);
  const uint64x2_t WMaskv = vdupq_n_u64(WMask);
  const uint64x2_t Vv = vdupq_n_u64(V);
  const uint64x2_t NotMv = vdupq_n_u64(NotM);
  uint64_t Mask = 0;
  unsigned I = 0;

  auto Fail = [&](uint64x2_t Z) -> uint64_t {
    uint64x2_t Eq = vceqq_u64(vandq_u64(Z, NotMv), Vv);
    uint64_t Members =
        (vgetq_lane_u64(Eq, 0) & 1) | ((vgetq_lane_u64(Eq, 1) & 1) << 1);
    return ~Members & 0x3;
  };

  switch (Op) {
  case BinaryOp::Add:
    for (; I + 2 <= N; I += 2) {
      uint64x2_t Y = vld1q_u64(Ys + I);
      Mask |= Fail(vandq_u64(vaddq_u64(Xv, Y), WMaskv)) << I;
    }
    break;
  case BinaryOp::Sub:
    for (; I + 2 <= N; I += 2) {
      uint64x2_t Y = vld1q_u64(Ys + I);
      Mask |= Fail(vandq_u64(vsubq_u64(Xv, Y), WMaskv)) << I;
    }
    break;
  case BinaryOp::Mul:
    // NEON has no 64x64 lane multiply; at Width <= 16 a 32-bit lane
    // multiply of the low halves is exact, mirroring the x86 loops.
    for (; I + 2 <= N; I += 2) {
      uint64x2_t Y = vld1q_u64(Ys + I);
      uint32x4_t Prod =
          vmulq_u32(vreinterpretq_u32_u64(Xv), vreinterpretq_u32_u64(Y));
      Mask |= Fail(vandq_u64(vreinterpretq_u64_u32(Prod), WMaskv)) << I;
    }
    break;
  case BinaryOp::And:
    for (; I + 2 <= N; I += 2) {
      uint64x2_t Y = vld1q_u64(Ys + I);
      Mask |= Fail(vandq_u64(Xv, Y)) << I;
    }
    break;
  case BinaryOp::Or:
    for (; I + 2 <= N; I += 2) {
      uint64x2_t Y = vld1q_u64(Ys + I);
      Mask |= Fail(vorrq_u64(Xv, Y)) << I;
    }
    break;
  case BinaryOp::Xor:
    for (; I + 2 <= N; I += 2) {
      uint64x2_t Y = vld1q_u64(Ys + I);
      Mask |= Fail(veorq_u64(Xv, Y)) << I;
    }
    break;
  default:
    assert(false && "op has no fused scan loop");
  }

  for (; I != N; ++I) {
    uint64_t Z = fusedScalarEval(Op, X, Ys[I], WMask);
    Mask |= uint64_t((Z & NotM) != V) << I;
  }
  return Mask;
}

#endif // TNUMS_SIMD_HAVE_NEON_KERNELS

/// Whether (Kernels, Op, Width) routes through a fused evaluate-and-test
/// scan instead of the two-pass batch + membership kernel: any
/// hand-vectorized tier with a fused-eligible op. The portable tier keeps
/// the two-pass path -- it IS the reference the fused loops are pinned
/// against.
bool useFusedScan(const SimdKernels &Kernels, BinaryOp Op, unsigned Width) {
  if (Kernels.Tier == SimdTier::Portable)
    return false;
  return hasFusedSimdKernel(Op, Width);
}

/// Dispatches one fused scan call to \p Tier's loop. Only called when
/// useFusedScan() held, which implies the matching kernels were selected
/// (and therefore the host executes that tier).
uint64_t fusedNonMemberScan(SimdTier Tier, BinaryOp Op, uint64_t X,
                            const uint64_t *Ys, unsigned N, uint64_t WMask,
                            uint64_t V, uint64_t NotM) {
  switch (Tier) {
#if TNUMS_SIMD_HAVE_X86_KERNELS
  case SimdTier::Avx2:
    return fusedNonMemberScanAvx2(Op, X, Ys, N, WMask, V, NotM);
  case SimdTier::Avx512:
    return fusedNonMemberScanAvx512(Op, X, Ys, N, WMask, V, NotM);
#endif
#if TNUMS_SIMD_HAVE_NEON_KERNELS
  case SimdTier::Neon:
    return fusedNonMemberScanNeon(Op, X, Ys, N, WMask, V, NotM);
#endif
  default:
    assert(false && "fused scan dispatched to a tier without loops");
    uint64_t Mask = 0;
    for (unsigned I = 0; I != N; ++I) {
      uint64_t Z = fusedScalarEval(Op, X, Ys[I], WMask);
      Mask |= uint64_t((Z & NotM) != V) << I;
    }
    return Mask;
  }
}

} // namespace

std::optional<SoundnessCounterexample> tnums::scanPairMembersBatched(
    BinaryOp Op, unsigned Width, const Tnum &P, const Tnum &Q, const Tnum &R,
    const uint64_t *Ys, uint64_t NumYs, const SimdKernels &Kernels,
    uint64_t &ConcreteChecked) {
  if (P.isBottom() || NumYs == 0)
    return std::nullopt; // Empty gamma on either side: nothing to scan.
  // (Z & ~R.m) == R.v is Tnum::contains without the well-formedness
  // branch: an ill-formed R has a value bit inside its mask, making the
  // compare false in every lane, which is exactly "bottom contains
  // nothing".
  const uint64_t V = R.value();
  const uint64_t NotM = ~R.mask();
  const uint64_t WMask = lowBitsMask(Width);
  const bool Fused = useFusedScan(Kernels, Op, Width);
  alignas(SimdBatchAlign) uint64_t Zs[SimdBatchLanes];
  std::optional<SoundnessCounterexample> Result;
  // X walks gamma(P) through the one canonical member enumerator; only
  // the Y axis is batched. A violation ends the whole sweep, so the
  // remaining no-op visits after one is found cost nothing that matters.
  forEachMember(P, [&](uint64_t X) {
    if (Result)
      return;
    for (uint64_t Base = 0; Base < NumYs; Base += SimdBatchLanes) {
      unsigned N = static_cast<unsigned>(
          std::min<uint64_t>(SimdBatchLanes, NumYs - Base));
      uint64_t Bad;
      if (Fused) {
        Bad = fusedNonMemberScan(Kernels.Tier, Op, X, Ys + Base, N, WMask, V,
                                 NotM);
      } else {
        applyConcreteBinaryBatch(Op, X, Ys + Base, Zs, N, Width);
        Bad = Kernels.NonMemberMask(Zs, N, V, NotM);
      }
      if (Bad) {
        // The scalar scan counts each evaluation before testing it, so a
        // violation at batch offset J has consumed Base + J + 1 of this
        // X's evaluations.
        unsigned J = static_cast<unsigned>(std::countr_zero(Bad));
        uint64_t Y = Ys[Base + J];
        // The fused path never materializes Z; recompute the single
        // witness value (a violation terminates the whole sweep).
        uint64_t Z = Fused ? applyConcreteBinary(Op, X, Y, Width) : Zs[J];
        ConcreteChecked += Base + J + 1;
        Result = SoundnessCounterexample{P, Q, X, Y, Z, R};
        return;
      }
    }
    ConcreteChecked += NumYs;
  });
  return Result;
}

SoundnessReport tnums::checkSoundnessExhaustive(BinaryOp Op, unsigned Width,
                                                MulAlgorithm Mul,
                                                SimdMode Simd) {
  assert((!isShiftOp(Op) || (Width & (Width - 1)) == 0) &&
         "shift verification requires a power-of-two width");
  SoundnessReport Report;
  std::vector<Tnum> Universe = allWellFormedTnums(Width);
  const bool Batched = simdModeBatches(Simd);
  const SimdKernels &Kernels = selectSimdKernels(Simd);
  std::vector<uint64_t> Ys;
  for (const Tnum &P : Universe) {
    for (const Tnum &Q : Universe) {
      ++Report.PairsChecked;
      Tnum R = applyAbstractBinary(Op, P, Q, Width, Mul);
      if (Batched) {
        materializeMembers(Q, Ys);
        Report.Failure = scanPairMembersBatched(Op, Width, P, Q, R, Ys.data(),
                                                Ys.size(), Kernels,
                                                Report.ConcreteChecked);
        if (Report.Failure)
          return Report;
      } else if (!checkAllMembers(Op, Width, P, Q, R, Report)) {
        return Report;
      }
    }
  }
  return Report;
}

Tnum tnums::randomWellFormedTnum(Xoshiro256 &Rng, unsigned Width) {
  uint64_t WidthMask = lowBitsMask(Width);
  uint64_t Mask = Rng.next() & WidthMask;
  uint64_t Value = Rng.next() & WidthMask & ~Mask;
  return Tnum(Value, Mask);
}

SoundnessReport tnums::checkSoundnessRandom(BinaryOp Op, unsigned Width,
                                            uint64_t NumPairs,
                                            unsigned SamplesPerPair,
                                            Xoshiro256 &Rng,
                                            MulAlgorithm Mul) {
  assert((!isShiftOp(Op) || (Width & (Width - 1)) == 0) &&
         "shift verification requires a power-of-two width");
  SoundnessReport Report;
  for (uint64_t I = 0; I != NumPairs; ++I) {
    Tnum P = randomWellFormedTnum(Rng, Width);
    Tnum Q = randomWellFormedTnum(Rng, Width);
    ++Report.PairsChecked;
    Tnum R = applyAbstractBinary(Op, P, Q, Width, Mul);

    auto CheckOne = [&](uint64_t X, uint64_t Y) {
      ++Report.ConcreteChecked;
      uint64_t Z = applyConcreteBinary(Op, X, Y, Width);
      if (!R.contains(Z) && !Report.Failure)
        Report.Failure = SoundnessCounterexample{P, Q, X, Y, Z, R};
    };

    // Corner members first: the extremes of each concretization are where
    // carry/borrow chains behave most differently (Lemmas 2/3 pick exactly
    // these points).
    uint64_t CornersP[2] = {P.minMember(), P.maxMember()};
    uint64_t CornersQ[2] = {Q.minMember(), Q.maxMember()};
    for (uint64_t X : CornersP)
      for (uint64_t Y : CornersQ)
        CheckOne(X, Y);

    for (unsigned S = 0; S != SamplesPerPair; ++S) {
      uint64_t X = P.value() | (Rng.next() & P.mask());
      uint64_t Y = Q.value() | (Rng.next() & Q.mask());
      CheckOne(X, Y);
    }
    if (Report.Failure)
      return Report;
  }
  return Report;
}
