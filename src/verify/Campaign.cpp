//===- verify/Campaign.cpp - Checkpointed, sharded campaigns --------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "verify/Campaign.h"

#include "support/ArgParse.h"
#include "support/Metrics.h"
#include "support/Table.h"
#include "support/Trace.h"
#include "tnum/TnumEnum.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include <sys/stat.h>

using namespace tnums;

const char *tnums::campaignPropertyName(CampaignProperty Property) {
  switch (Property) {
  case CampaignProperty::Soundness:
    return "soundness";
  case CampaignProperty::Optimality:
    return "optimality";
  case CampaignProperty::Monotonicity:
    return "monotonicity";
  case CampaignProperty::Precision:
    return "precision";
  }
  return "?";
}

unsigned tnums::campaignPropertyPayloadVersion(CampaignProperty Property) {
  // Bump a property's version whenever its serialize*/parse* pair below
  // changes format; the fingerprint mix then invalidates stored shards
  // of that property and nothing else.
  switch (Property) {
  case CampaignProperty::Soundness:
  case CampaignProperty::Optimality:
  case CampaignProperty::Monotonicity:
  case CampaignProperty::Precision:
    return 1;
  }
  return 0;
}

void CampaignSpec::addGrid(BinaryOp Op, MulAlgorithm Mul,
                           const std::vector<unsigned> &Widths,
                           const std::vector<CampaignProperty> &Properties) {
  for (unsigned Width : Widths)
    for (CampaignProperty Property : Properties)
      Cells.push_back(CampaignCell{Op, Mul, Width, Property});
}

bool CampaignSpec::overrideApplies(const CampaignCell &Cell) const {
  // The override stands in for the transfer function wherever the cell
  // EXECUTES it per pair: soundness verification and precision
  // measurement. Optimality/monotonicity cells always check the real
  // operator (their semantics are defined against applyAbstractBinary).
  if (!OperatorOverride || (Cell.Property != CampaignProperty::Soundness &&
                            Cell.Property != CampaignProperty::Precision))
    return false;
  if (OverrideOp && Cell.Op != *OverrideOp)
    return false;
  if (OverrideMul && (Cell.Op != BinaryOp::Mul || Cell.Mul != *OverrideMul))
    return false;
  return true;
}

bool CampaignCellResult::holds() const {
  switch (Cell.Property) {
  case CampaignProperty::Soundness:
    return Soundness.holds();
  case CampaignProperty::Optimality:
    return Optimality.isOptimalEverywhere();
  case CampaignProperty::Monotonicity:
    return Monotonicity.holds();
  case CampaignProperty::Precision:
    // "Measured optimal everywhere" -- informational for a measurement
    // property (front ends report precision cells, they do not fail on
    // them), but exactly what diff-baseline verdict flips should track.
    return Precision.MaxGap == 0;
  }
  return false;
}

void tnums::printCampaignStatus(uint64_t ShardsTotal, uint64_t ShardsRun,
                                uint64_t ShardsResumed,
                                uint64_t ShardsSkipped,
                                uint64_t ShardsInvalidated,
                                const std::string &CheckpointDir) {
  std::printf("campaign: %llu shards total, %llu run here, %llu resumed "
              "from checkpoint",
              static_cast<unsigned long long>(ShardsTotal),
              static_cast<unsigned long long>(ShardsRun),
              static_cast<unsigned long long>(ShardsResumed));
  if (ShardsSkipped)
    std::printf(", %llu skipped past early-exit witnesses",
                static_cast<unsigned long long>(ShardsSkipped));
  if (ShardsInvalidated)
    std::printf(", %llu invalidated by operator changes",
                static_cast<unsigned long long>(ShardsInvalidated));
  if (!CheckpointDir.empty())
    std::printf("; checkpoint dir %s", CheckpointDir.c_str());
  std::printf("\n");
}

bool tnums::matchCampaignArgs(ArgParser &Args, CampaignIO &IO) {
  const char *Dir = nullptr;
  if (Args.matchString("--checkpoint-dir", Dir)) {
    if (Dir) // Unset when the value was missing (the parser latched it).
      IO.CheckpointDir = Dir;
    return true;
  }
  if (Args.matchFlag("--resume")) {
    IO.Resume = true;
    return true;
  }
  if (Args.matchUnsigned("--shards", 1, 4096, IO.Shards))
    return true;
  if (Args.matchUnsigned("--shard-index", 0, 4095, IO.ShardIndex))
    return true;
  if (Args.matchU64("--shard-pairs", 1, UINT64_MAX, IO.ShardPairs))
    return true;
  // Time-box the invocation: stop after N shards (resume later). Also how
  // CI simulates preemption at a shard boundary.
  if (Args.matchU64("--max-shards", 1, UINT64_MAX, IO.MaxShardsThisRun))
    return true;
  return false;
}

uint64_t tnums::campaignFingerprint(const CampaignSpec &Spec,
                                    const CampaignIO &IO) {
  // The SHAPE only: operator implementation versions and the override tag
  // key individual cells (campaignCellFingerprint), never the directory --
  // an algorithm change must invalidate cells, not refuse the store.
  Fnv1a Hash;
  Hash.mixString("tnums-campaign v2");
  Hash.mixU64(Spec.Cells.size());
  for (const CampaignCell &Cell : Spec.Cells) {
    Hash.mixU64(static_cast<uint64_t>(Cell.Op));
    Hash.mixU64(static_cast<uint64_t>(Cell.Mul));
    Hash.mixU64(Cell.Width);
    Hash.mixU64(static_cast<uint64_t>(Cell.Property));
  }
  Hash.mixU64(Spec.OptimalityEarlyExit ? 1 : 0);
  Hash.mixU64(IO.ShardPairs);
  return Hash.digest();
}

namespace {

/// The implementation-content half of a built-in cell's fingerprint: the
/// coordinates plus the version of the transfer function under test.
/// propertyCellFingerprint extends it with the property name and payload
/// version to form what shard files actually store.
uint64_t cellContentFingerprint(const CampaignSpec &Spec,
                                const CampaignCell &Cell) {
  Fnv1a Hash;
  Hash.mixString("tnums-campaign-cell v3");
  Hash.mixU64(static_cast<uint64_t>(Cell.Op));
  Hash.mixU64(static_cast<uint64_t>(Cell.Mul));
  Hash.mixU64(Cell.Width);
  Hash.mixU64(static_cast<uint64_t>(Cell.Property));
  if (Spec.overrideApplies(Cell)) {
    // The override IS the implementation under test; its tag stands in
    // for the unhashable function.
    Hash.mixString("override");
    Hash.mixString(Spec.OverrideTag);
  } else {
    Hash.mixU64(opFingerprint(Cell.Op, Cell.Mul));
  }
  return Hash.digest();
}

} // namespace

uint64_t tnums::propertyCellFingerprint(uint64_t ContentFingerprint,
                                        const char *PropertyName,
                                        unsigned PayloadVersion) {
  Fnv1a Hash;
  Hash.mixString("tnums-property-cell v1");
  Hash.mixU64(ContentFingerprint);
  Hash.mixString(PropertyName);
  Hash.mixU64(PayloadVersion);
  return Hash.digest();
}

uint64_t tnums::campaignCellFingerprint(const CampaignSpec &Spec,
                                        const CampaignCell &Cell) {
  return propertyCellFingerprint(
      cellContentFingerprint(Spec, Cell),
      campaignPropertyName(Cell.Property),
      campaignPropertyPayloadVersion(Cell.Property));
}

//===----------------------------------------------------------------------===//
// Generic sharded driver
//===----------------------------------------------------------------------===//

namespace {

/// One manifest entry: a contiguous pair-index range of one cell.
struct ShardRef {
  size_t Cell;
  uint64_t Begin;
  uint64_t End;
};

/// The deterministic manifest: cell-major, ranges ascending. A pure
/// function of the cell sizes and ShardPairs -- every invocation of a
/// campaign computes the identical list, which is what shard files are
/// keyed by.
std::vector<ShardRef> buildManifest(const std::vector<uint64_t> &CellPairs,
                                    uint64_t ShardPairs) {
  std::vector<ShardRef> Manifest;
  for (size_t Cell = 0; Cell != CellPairs.size(); ++Cell) {
    uint64_t Total = CellPairs[Cell];
    if (Total == 0) {
      // A degenerate empty cell still occupies one manifest slot so the
      // merge sees it and can mark it complete.
      Manifest.push_back(ShardRef{Cell, 0, 0});
      continue;
    }
    for (uint64_t Begin = 0; Begin < Total;) {
      uint64_t End = Total - Begin > ShardPairs ? Begin + ShardPairs : Total;
      Manifest.push_back(ShardRef{Cell, Begin, End});
      Begin = End;
    }
  }
  return Manifest;
}

} // namespace

ShardDriveResult tnums::driveCampaignShards(
    const std::vector<uint64_t> &CellTotalPairs,
    const std::vector<uint64_t> &CellFingerprints, uint64_t Fingerprint,
    const CampaignIO &IO, const RunShardFn &Run, const MergeShardFn &Merge,
    std::vector<bool> *CellComplete,
    std::vector<CellShardCounts> *CellCounts) {
  ShardDriveResult Result;
  assert(CellFingerprints.size() == CellTotalPairs.size() &&
         "one content fingerprint per cell");
  if (IO.Shards == 0 || IO.ShardIndex >= IO.Shards) {
    Result.Error = formatString("bad shard split: index %u of %u",
                                IO.ShardIndex, IO.Shards);
    return Result;
  }
  if (IO.Shards > 1 && IO.CheckpointDir.empty()) {
    Result.Error = "--shards > 1 requires a checkpoint directory "
                   "(shard results meet on disk)";
    return Result;
  }
  if (IO.ShardPairs == 0) {
    Result.Error = "ShardPairs must be positive";
    return Result;
  }

  const std::vector<ShardRef> Manifest =
      buildManifest(CellTotalPairs, IO.ShardPairs);
  Result.ShardsTotal = Manifest.size();
  if (CellCounts)
    CellCounts->assign(CellTotalPairs.size(), CellShardCounts{});

  std::optional<CheckpointStore> Store;
  if (!IO.CheckpointDir.empty()) {
    std::string Error;
    Store = CheckpointStore::open(IO.CheckpointDir, Fingerprint,
                                  Manifest.size(), Error);
    if (!Store) {
      Result.Error = std::move(Error);
      return Result;
    }
    if (!IO.Resume) {
      for (uint64_t Id = 0; Id != Manifest.size(); ++Id)
        if (Id % IO.Shards == IO.ShardIndex && Store->hasShard(Id)) {
          Result.Error = formatString(
              "checkpoint directory %s already holds shard %" PRIu64
              " of this invocation's slice; pass --resume to reuse it or "
              "point at a fresh directory",
              IO.CheckpointDir.c_str(), Id);
          return Result;
        }
    }
  }

  // Telemetry heartbeats: one JSONL row per shard executed by THIS
  // invocation plus a final invocation summary, appended to
  // telemetry.jsonl beside the shard store. The file accumulates across
  // resumes and is invisible to every fingerprint and bit-identity claim
  // (it is not a shard file and is never read back); an open failure
  // leaves the log inert rather than failing the campaign.
  EventLog Telemetry;
  if (!IO.CheckpointDir.empty()) {
    std::string TelemetryError;
    Telemetry.open(IO.CheckpointDir + "/telemetry.jsonl", TelemetryError);
  }
  const uint64_t InvocationStartNs = Telemetry.active() ? traceNowNs() : 0;

  // Results this invocation has in hand (computed or loaded), keyed by
  // manifest index. The merge below prefers this cache and falls back to
  // the store for shards other invocations completed after we passed
  // them in the execution loop.
  std::map<uint64_t, ShardRecord> Cache;
  // Lowest terminal shard per cell seen so far; later shards of that
  // cell are dead (early-exit) and are skipped, not run.
  std::map<size_t, uint64_t> CellTerminalShard;

  auto isDead = [&](const ShardRef &Ref, uint64_t Id) {
    auto It = CellTerminalShard.find(Ref.Cell);
    return It != CellTerminalShard.end() && Id > It->second;
  };

  /// Loads shard \p Id from the store and classifies it: a record whose
  /// cell fingerprint still matches is CURRENT (cached, terminal
  /// bookkeeping applied); a mismatch is STALE -- the operator
  /// implementation changed since it was written, so its verdict must
  /// not be merged; a file that disappeared between hasShard and
  /// loadShard is MISSING (another invocation's owner GC'd a stale shard
  /// under us -- the replacement, if any, lands later). A stored cell
  /// index disagreeing with the manifest is corruption, reported as a
  /// hard error.
  enum class Stored { Current, Stale, Missing, Error };
  auto classifyStored = [&](uint64_t Id, const ShardRef &Ref) -> Stored {
    std::string Error;
    std::optional<ShardRecord> Record = Store->loadShard(Id, Error);
    if (!Record) {
      if (Error.empty())
        return Stored::Missing;
      Result.Error = std::move(Error);
      return Stored::Error;
    }
    if (Record->Cell != Ref.Cell) {
      Result.Error = formatString(
          "shard %" PRIu64 " in %s records cell %" PRIu64
          " but the manifest places it in cell %zu; the store is corrupt",
          Id, IO.CheckpointDir.c_str(), Record->Cell, Ref.Cell);
      return Stored::Error;
    }
    if (Record->CellFingerprint != CellFingerprints[Ref.Cell])
      return Stored::Stale;
    if (Record->Terminal)
      CellTerminalShard.emplace(Ref.Cell, Id);
    Cache.emplace(Id, std::move(*Record));
    return Stored::Current;
  };

  //===--------------------------------------------------------------------===//
  // Execution: walk the manifest in order, running owned shards,
  // absorbing checkpointed ones whose cell fingerprint still matches,
  // and GC-ing + re-running owned shards invalidated by an operator
  // change.
  //===--------------------------------------------------------------------===//
  for (uint64_t Id = 0; Id != Manifest.size(); ++Id) {
    const ShardRef &Ref = Manifest[Id];
    if (isDead(Ref, Id)) {
      ++Result.ShardsSkipped;
      if (CellCounts)
        ++(*CellCounts)[Ref.Cell].Skipped;
      continue;
    }
    const bool Owned = Id % IO.Shards == IO.ShardIndex;
    if (Store && Store->hasShard(Id)) {
      switch (classifyStored(Id, Ref)) {
      case Stored::Error:
        return Result;
      case Stored::Missing:
        break; // Vanished under us: fall through and run if owned.
      case Stored::Current:
        if (Owned) {
          ++Result.ShardsResumed;
          if (CellCounts)
            ++(*CellCounts)[Ref.Cell].Resumed;
        }
        continue;
      case Stored::Stale: {
        // Only the OWNER may GC: a non-owner unlinking here could race
        // the owner's re-run and delete the freshly renamed replacement.
        // Non-owners simply treat the stale shard as absent.
        if (!Owned)
          break;
        ++Result.ShardsInvalidated;
        if (CellCounts)
          ++(*CellCounts)[Ref.Cell].Invalidated;
        std::string Error;
        if (!Store->removeShard(Id, Error)) {
          Result.Error = std::move(Error);
          return Result;
        }
        break; // Fall through to re-run below.
      }
      }
    }
    if (!Owned)
      continue;
    if (IO.MaxShardsThisRun && Result.ShardsRun >= IO.MaxShardsThisRun)
      continue; // Time-box hit: leave the rest for a resume.
    const uint64_t ShardStartNs = Telemetry.active() ? traceNowNs() : 0;
    ShardRecord Record;
    Run(Ref.Cell, Ref.Begin, Ref.End, Record);
    Record.Cell = Ref.Cell;
    Record.CellFingerprint = CellFingerprints[Ref.Cell];
    if (Store) {
      std::string Error;
      if (!Store->storeShard(Id, Record, Error)) {
        Result.Error = std::move(Error);
        return Result;
      }
    }
    if (Telemetry.active()) {
      const double WallS = double(traceNowNs() - ShardStartNs) / 1e9;
      const uint64_t Pairs = Ref.End - Ref.Begin;
      JsonLineBuilder Line;
      Line.field("ts_ms", traceWallMs())
          .field("event", "shard")
          .field("shard", Id)
          .field("cell", static_cast<uint64_t>(Ref.Cell))
          .field("begin", Ref.Begin)
          .field("end", Ref.End)
          .field("wall_s", WallS)
          .field("pairs_per_s", WallS > 0 ? double(Pairs) / WallS : 0.0)
          .field("terminal", Record.Terminal);
      Telemetry.write(Line.str());
    }
    if (Record.Terminal)
      CellTerminalShard.emplace(Ref.Cell, Id);
    Cache.emplace(Id, std::move(Record));
    ++Result.ShardsRun;
    if (CellCounts)
      ++(*CellCounts)[Ref.Cell].Run;
  }

  //===--------------------------------------------------------------------===//
  // Merge: manifest order, stopping each cell at its terminal shard (or
  // its first missing/stale one). Because the order is fixed and every
  // payload is deterministic, the merged result is bit-identical no
  // matter which invocations produced which shards, in how many runs, or
  // how many cells were served from the store vs recomputed.
  //===--------------------------------------------------------------------===//
  if (CellComplete)
    CellComplete->assign(CellTotalPairs.size(), false);
  bool AllComplete = true;
  for (size_t Cell = 0; Cell != CellTotalPairs.size(); ++Cell) {
    bool Complete = true;
    for (uint64_t Id = 0; Id != Manifest.size(); ++Id) {
      const ShardRef &Ref = Manifest[Id];
      if (Ref.Cell != Cell)
        continue;
      const ShardRecord *Record = nullptr;
      auto It = Cache.find(Id);
      if (It != Cache.end()) {
        Record = &It->second;
      } else if (Store && Store->hasShard(Id)) {
        switch (classifyStored(Id, Ref)) {
        case Stored::Error:
          return Result;
        case Stored::Current:
          Record = &Cache.find(Id)->second;
          break;
        case Stored::Stale:
        case Stored::Missing:
          Record = nullptr; // No current verdict: the cell stays partial.
          break;
        }
      }
      if (!Record) {
        Complete = false;
        break;
      }
      std::string Error;
      if (!Merge(Cell, Ref.Begin, Ref.End, *Record, Error)) {
        Result.Error = Error.empty() ? formatString("shard %" PRIu64
                                                    " failed to merge",
                                                    Id)
                                     : std::move(Error);
        return Result;
      }
      if (Record->Terminal)
        break; // The cell ends here by construction.
    }
    if (CellComplete)
      (*CellComplete)[Cell] = Complete;
    AllComplete &= Complete;
  }
  Result.Complete = AllComplete;
  if (Telemetry.active()) {
    JsonLineBuilder Line;
    Line.field("ts_ms", traceWallMs())
        .field("event", "invocation")
        .field("shards_total", Result.ShardsTotal)
        .field("run", Result.ShardsRun)
        .field("resumed", Result.ShardsResumed)
        .field("skipped", Result.ShardsSkipped)
        .field("invalidated", Result.ShardsInvalidated)
        .field("complete", Result.Complete)
        .field("wall_s", double(traceNowNs() - InvocationStartNs) / 1e9);
    Telemetry.write(Line.str());
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Property shard payloads
//
// Line-oriented key/value text (hex for tnum words). Every field that
// the merge folds into a report is a deterministic function of the
// shard's range; only the informational "seconds" field varies between
// writers, which is why it is excluded from every bit-identity claim.
//===----------------------------------------------------------------------===//

namespace {

std::string hexTnum(const Tnum &T) {
  return formatString("%016" PRIx64 " %016" PRIx64, T.value(), T.mask());
}

/// The engine-stamped first line of every property payload, naming the
/// driver and its payload-format version. The header travels with the
/// shard so a store can be refused BY CONTENT, independently of the
/// fingerprint-level invalidation a version bump triggers.
std::string payloadHeaderLine(const char *Name, unsigned Version) {
  return formatString("payload %s %u\n", Name, Version);
}

/// Verifies and strips \p Payload's header line, leaving the body the
/// driver's mergeShard parses. A mismatch is the migration refusal: the
/// stored bytes were written by a different property or payload version
/// and must not be merged.
bool stripPayloadHeader(const std::string &Payload, const char *Name,
                        unsigned Version, size_t CellIndex, std::string &Body,
                        std::string &Error) {
  const size_t Eol = Payload.find('\n');
  const std::string Header =
      Eol == std::string::npos ? Payload : Payload.substr(0, Eol);
  const std::string Expected = formatString("payload %s %u", Name, Version);
  if (Header != Expected) {
    Error = formatString(
        "cell %zu shard payload declares format \"%s\" but this binary "
        "expects \"%s\"; the store was written by an incompatible payload "
        "version -- re-run the campaign against a fresh checkpoint "
        "directory to migrate it",
        CellIndex, Header.c_str(), Expected.c_str());
    return false;
  }
  Body = Eol == std::string::npos ? std::string() : Payload.substr(Eol + 1);
  return true;
}

/// Fields shared by every property payload.
struct PayloadReader {
  std::map<std::string, std::string> Fields;

  explicit PayloadReader(const std::string &Payload) {
    size_t Pos = 0;
    while (Pos < Payload.size()) {
      size_t Eol = Payload.find('\n', Pos);
      if (Eol == std::string::npos)
        Eol = Payload.size();
      std::string Line = Payload.substr(Pos, Eol - Pos);
      Pos = Eol + 1;
      size_t Space = Line.find(' ');
      if (Space == std::string::npos || Space == 0)
        continue;
      Fields.emplace(Line.substr(0, Space), Line.substr(Space + 1));
    }
  }

  bool u64(const char *Key, uint64_t &Out) const {
    auto It = Fields.find(Key);
    if (It == Fields.end())
      return false;
    char *End = nullptr;
    errno = 0;
    unsigned long long Value = std::strtoull(It->second.c_str(), &End, 10);
    if (errno != 0 || End == It->second.c_str() || *End != '\0')
      return false;
    Out = static_cast<uint64_t>(Value);
    return true;
  }

  bool seconds(double &Out) const {
    auto It = Fields.find("seconds");
    if (It == Fields.end())
      return false;
    Out = std::strtod(It->second.c_str(), nullptr);
    return true;
  }

  /// Parses \p Count whitespace-separated hex words from field \p Key.
  bool hexWords(const char *Key, uint64_t *Out, unsigned Count) const {
    auto It = Fields.find(Key);
    if (It == Fields.end())
      return false;
    const char *Text = It->second.c_str();
    for (unsigned I = 0; I != Count; ++I) {
      char *End = nullptr;
      errno = 0;
      unsigned long long Value = std::strtoull(Text, &End, 16);
      if (errno != 0 || End == Text)
        return false;
      Out[I] = static_cast<uint64_t>(Value);
      Text = End;
    }
    return *Text == '\0' || *Text == ' ';
  }

  bool has(const char *Key) const { return Fields.count(Key) != 0; }
};

std::string serializeSoundnessShard(const SoundnessReport &Report,
                                    double Seconds) {
  std::string Payload = formatString(
      "pairs %" PRIu64 "\nconcrete %" PRIu64 "\nseconds %.9g\n",
      Report.PairsChecked, Report.ConcreteChecked, Seconds);
  if (Report.Failure) {
    const SoundnessCounterexample &W = *Report.Failure;
    Payload += formatString("witness %s %s %016" PRIx64 " %016" PRIx64
                            " %016" PRIx64 " %s\n",
                            hexTnum(W.P).c_str(), hexTnum(W.Q).c_str(), W.X,
                            W.Y, W.Z, hexTnum(W.R).c_str());
  }
  return Payload;
}

bool parseSoundnessShard(const std::string &Payload, SoundnessReport &Out,
                         double &Seconds) {
  PayloadReader Reader(Payload);
  if (!Reader.u64("pairs", Out.PairsChecked) ||
      !Reader.u64("concrete", Out.ConcreteChecked) ||
      !Reader.seconds(Seconds))
    return false;
  if (Reader.has("witness")) {
    uint64_t W[9];
    if (!Reader.hexWords("witness", W, 9))
      return false;
    Out.Failure = SoundnessCounterexample{Tnum(W[0], W[1]), Tnum(W[2], W[3]),
                                          W[4], W[5], W[6],
                                          Tnum(W[7], W[8])};
  }
  return true;
}

std::string serializeOptimalityShard(const OptimalityReport &Report,
                                     double Seconds) {
  std::string Payload = formatString(
      "pairs %" PRIu64 "\noptimal %" PRIu64 "\nseconds %.9g\n",
      Report.PairsChecked, Report.OptimalPairs, Seconds);
  if (Report.Failure) {
    const OptimalityCounterexample &W = *Report.Failure;
    Payload += formatString("witness %s %s %s %s\n", hexTnum(W.P).c_str(),
                            hexTnum(W.Q).c_str(), hexTnum(W.Actual).c_str(),
                            hexTnum(W.Optimal).c_str());
  }
  return Payload;
}

bool parseOptimalityShard(const std::string &Payload, OptimalityReport &Out,
                          double &Seconds) {
  PayloadReader Reader(Payload);
  if (!Reader.u64("pairs", Out.PairsChecked) ||
      !Reader.u64("optimal", Out.OptimalPairs) || !Reader.seconds(Seconds))
    return false;
  if (Reader.has("witness")) {
    uint64_t W[8];
    if (!Reader.hexWords("witness", W, 8))
      return false;
    Out.Failure = OptimalityCounterexample{Tnum(W[0], W[1]), Tnum(W[2], W[3]),
                                           Tnum(W[4], W[5]),
                                           Tnum(W[6], W[7])};
  }
  return true;
}

std::string serializeMonotonicityShard(const MonotonicityReport &Report,
                                       double Seconds) {
  std::string Payload =
      formatString("quadruples %" PRIu64 "\nseconds %.9g\n",
                   Report.QuadruplesChecked, Seconds);
  if (Report.Failure) {
    const MonotonicityCounterexample &W = *Report.Failure;
    Payload += formatString("witness %s %s %s %s %s %s\n",
                            hexTnum(W.P1).c_str(), hexTnum(W.Q1).c_str(),
                            hexTnum(W.P2).c_str(), hexTnum(W.Q2).c_str(),
                            hexTnum(W.R1).c_str(), hexTnum(W.R2).c_str());
  }
  return Payload;
}

bool parseMonotonicityShard(const std::string &Payload,
                            MonotonicityReport &Out, double &Seconds) {
  PayloadReader Reader(Payload);
  if (!Reader.u64("quadruples", Out.QuadruplesChecked) ||
      !Reader.seconds(Seconds))
    return false;
  if (Reader.has("witness")) {
    uint64_t W[12];
    if (!Reader.hexWords("witness", W, 12))
      return false;
    Out.Failure = MonotonicityCounterexample{
        Tnum(W[0], W[1]), Tnum(W[2], W[3]),  Tnum(W[4], W[5]),
        Tnum(W[6], W[7]), Tnum(W[8], W[9]), Tnum(W[10], W[11])};
  }
  return true;
}

std::string serializePrecisionShard(const PrecisionReport &Report,
                                    double Seconds) {
  std::string Payload = formatString(
      "pairs %" PRIu64 "\nsumgap %" PRIu64 "\nmaxgap %u\nseconds %.9g\n",
      Report.PairsChecked, Report.SumGap, Report.MaxGap, Seconds);
  // Sparse histogram, one DISTINCT key per nonzero bucket: PayloadReader
  // keeps only the first occurrence of a duplicate key, so the buckets
  // cannot share one.
  for (unsigned G = 0; G != PrecisionGapBuckets; ++G)
    if (Report.Buckets[G])
      Payload += formatString("hist%u %" PRIu64 "\n", G, Report.Buckets[G]);
  if (Report.Worst) {
    const PrecisionWitness &W = *Report.Worst;
    Payload += formatString("witness %s %s %s %s\n", hexTnum(W.P).c_str(),
                            hexTnum(W.Q).c_str(), hexTnum(W.Actual).c_str(),
                            hexTnum(W.Optimal).c_str());
  }
  return Payload;
}

bool parsePrecisionShard(const std::string &Payload, PrecisionReport &Out,
                         double &Seconds) {
  PayloadReader Reader(Payload);
  uint64_t MaxGap = 0;
  if (!Reader.u64("pairs", Out.PairsChecked) ||
      !Reader.u64("sumgap", Out.SumGap) || !Reader.u64("maxgap", MaxGap) ||
      MaxGap >= PrecisionGapBuckets || !Reader.seconds(Seconds))
    return false;
  Out.MaxGap = static_cast<unsigned>(MaxGap);
  for (unsigned G = 0; G != PrecisionGapBuckets; ++G) {
    uint64_t Count = 0;
    if (Reader.u64(formatString("hist%u", G).c_str(), Count))
      Out.Buckets[G] = Count;
  }
  // The witness, when present, is the shard's worst pair: its gap IS
  // maxgap, so the value is not serialized separately.
  if (Reader.has("witness")) {
    uint64_t W[8];
    if (!Reader.hexWords("witness", W, 8))
      return false;
    Out.Worst = PrecisionWitness{Tnum(W[0], W[1]), Tnum(W[2], W[3]),
                                 Tnum(W[4], W[5]), Tnum(W[6], W[7]),
                                 Out.MaxGap};
  }
  return true;
}

/// Parses one shard payload BODY (header already stripped) and folds it
/// into \p Cell according to the cell's property -- the one merge used
/// by both the built-in drivers and the baseline loader, so a
/// --diff-baseline merge can never drift from the live one. False (with
/// \p Error set) on a malformed payload.
bool mergePropertyShard(CampaignCellResult &Cell, size_t CellIndex,
                        const std::string &Payload, std::string &Error) {
  double Seconds = 0;
  bool Ok = false;
  switch (Cell.Cell.Property) {
  case CampaignProperty::Soundness: {
    SoundnessReport Shard;
    Ok = parseSoundnessShard(Payload, Shard, Seconds);
    if (Ok) {
      Cell.Soundness.PairsChecked += Shard.PairsChecked;
      Cell.Soundness.ConcreteChecked += Shard.ConcreteChecked;
      if (Shard.Failure && !Cell.Soundness.Failure)
        Cell.Soundness.Failure = Shard.Failure;
    }
    break;
  }
  case CampaignProperty::Optimality: {
    OptimalityReport Shard;
    Ok = parseOptimalityShard(Payload, Shard, Seconds);
    if (Ok) {
      Cell.Optimality.PairsChecked += Shard.PairsChecked;
      Cell.Optimality.OptimalPairs += Shard.OptimalPairs;
      if (Shard.Failure && !Cell.Optimality.Failure)
        Cell.Optimality.Failure = Shard.Failure;
    }
    break;
  }
  case CampaignProperty::Monotonicity: {
    MonotonicityReport Shard;
    Ok = parseMonotonicityShard(Payload, Shard, Seconds);
    if (Ok) {
      Cell.Monotonicity.QuadruplesChecked += Shard.QuadruplesChecked;
      if (Shard.Failure && !Cell.Monotonicity.Failure)
        Cell.Monotonicity.Failure = Shard.Failure;
    }
    break;
  }
  case CampaignProperty::Precision: {
    PrecisionReport Shard;
    Ok = parsePrecisionShard(Payload, Shard, Seconds);
    if (Ok) {
      Cell.Precision.PairsChecked += Shard.PairsChecked;
      Cell.Precision.SumGap += Shard.SumGap;
      for (unsigned G = 0; G != PrecisionGapBuckets; ++G)
        Cell.Precision.Buckets[G] += Shard.Buckets[G];
      // Strictly-greater replacement in manifest order keeps the
      // earliest shard's witness on ties -- exactly the serial scan's
      // first pair attaining the global maximum.
      if (Shard.MaxGap > Cell.Precision.MaxGap) {
        Cell.Precision.MaxGap = Shard.MaxGap;
        Cell.Precision.Worst = Shard.Worst;
      }
    }
    break;
  }
  }
  if (!Ok) {
    Error = formatString("malformed %s shard payload for cell %zu",
                         campaignPropertyName(Cell.Cell.Property), CellIndex);
    return false;
  }
  Cell.Seconds += Seconds;
  ++Cell.ShardsMerged;
  return true;
}

//===----------------------------------------------------------------------===//
// Serial-prefix normalization
//
// The range sweeps' work counters are scheduling-dependent when a shard
// fails (cancellation). Checkpointed shards must be deterministic, so a
// failing shard is re-normalized to the exact counts a serial walk of
// [Begin, FailIndex] would have produced -- which also makes the merged
// campaign report equal the *serial* checker's report bit for bit.
//===----------------------------------------------------------------------===//

/// Concrete evaluations a serial scan of the witness pair performs: every
/// member pair up to and including the first violating one.
uint64_t evalsUpToViolation(BinaryOp Concrete, unsigned Width, const Tnum &P,
                            const Tnum &Q, const Tnum &R) {
  uint64_t Count = 0;
  bool Done = false;
  forEachMember(P, [&](uint64_t X) {
    if (Done)
      return;
    forEachMember(Q, [&](uint64_t Y) {
      if (Done)
        return;
      ++Count;
      if (!R.contains(applyConcreteBinary(Concrete, X, Y, Width)))
        Done = true;
    });
  });
  return Count;
}

/// Quadruples a serial scan of the witness pair performs, analogously.
uint64_t quadsUpToViolation(BinaryOp Op, MulAlgorithm Mul, unsigned Width,
                            const Tnum &P2, const Tnum &Q2) {
  Tnum R2 = applyAbstractBinary(Op, P2, Q2, Width, Mul);
  uint64_t Count = 0;
  bool Done = false;
  forEachSubTnum(P2, [&](Tnum P1) {
    if (Done)
      return;
    forEachSubTnum(Q2, [&](Tnum Q1) {
      if (Done)
        return;
      ++Count;
      if (!applyAbstractBinary(Op, P1, Q1, Width, Mul).isSubsetOf(R2))
        Done = true;
    });
  });
  return Count;
}

uint64_t pow3(unsigned Exp) {
  uint64_t Value = 1;
  while (Exp--)
    Value *= 3;
  return Value;
}

void normalizeSoundnessFailure(BinaryOp Concrete, const SweepGrid &Grid,
                               uint64_t Begin, uint64_t FailIndex,
                               SoundnessReport &Report) {
  assert(Report.Failure && "nothing to normalize");
  Report.PairsChecked = FailIndex - Begin + 1;
  uint64_t Concrete2 = 0;
  for (uint64_t Index = Begin; Index != FailIndex; ++Index) {
    const Tnum &P = Grid.Universe[Index / Grid.NumTnums];
    const Tnum &Q = Grid.Universe[Index % Grid.NumTnums];
    // Fully-scanned pairs cost exactly |gamma(P)| * |gamma(Q)| evals.
    Concrete2 += uint64_t(1) << (std::popcount(P.mask()) +
                                 std::popcount(Q.mask()));
  }
  const SoundnessCounterexample &W = *Report.Failure;
  Concrete2 += evalsUpToViolation(Concrete, Grid.Width, W.P, W.Q, W.R);
  Report.ConcreteChecked = Concrete2;
}

void normalizeMonotonicityFailure(BinaryOp Op, MulAlgorithm Mul,
                                  const SweepGrid &Grid, uint64_t Begin,
                                  uint64_t FailIndex,
                                  MonotonicityReport &Report) {
  assert(Report.Failure && "nothing to normalize");
  uint64_t Quads = 0;
  for (uint64_t Index = Begin; Index != FailIndex; ++Index) {
    const Tnum &P = Grid.Universe[Index / Grid.NumTnums];
    const Tnum &Q = Grid.Universe[Index % Grid.NumTnums];
    // A fully-scanned pair visits every refinement pair: the down-set of
    // a tnum with k unknown trits has 3^k elements.
    Quads += pow3(static_cast<unsigned>(std::popcount(P.mask()))) *
             pow3(static_cast<unsigned>(std::popcount(Q.mask())));
  }
  const MonotonicityCounterexample &W = *Report.Failure;
  Quads += quadsUpToViolation(Op, Mul, Grid.Width, W.P2, W.Q2);
  Report.QuadruplesChecked = Quads;
}

/// Early-exit optimality: rescan [Begin, FailIndex) serially to recover
/// the exact prefix OptimalPairs count. The witness is almost always in
/// the first shard of a non-optimal cell, so the rescan is short in
/// practice.
void normalizeOptimalityFailure(BinaryOp Op, MulAlgorithm Mul,
                                const SweepGrid &Grid,
                                const SweepConfig &Config, uint64_t Begin,
                                uint64_t FailIndex,
                                OptimalityReport &Report) {
  assert(Report.Failure && "nothing to normalize");
  Report.PairsChecked = FailIndex - Begin + 1;
  const bool Batched = simdModeBatches(Config.Simd);
  const SimdKernels &Kernels = selectSimdKernels(Config.Simd);
  std::vector<uint64_t> Xs;
  std::vector<uint64_t> Ys;
  uint64_t XsIndex = UINT64_MAX;
  uint64_t Optimal = 0;
  for (uint64_t Index = Begin; Index != FailIndex; ++Index) {
    const Tnum &P = Grid.Universe[Index / Grid.NumTnums];
    const Tnum &Q = Grid.Universe[Index % Grid.NumTnums];
    Tnum Actual = applyAbstractBinary(Op, P, Q, Grid.Width, Mul);
    Tnum Best;
    if (Batched) {
      const uint64_t *XsPtr;
      uint64_t NumXs;
      uint64_t PIndex = Index / Grid.NumTnums;
      if (Grid.Members) {
        XsPtr = Grid.Members->members(PIndex);
        NumXs = Grid.Members->numMembers(PIndex);
      } else {
        if (XsIndex != PIndex) {
          materializeMembers(P, Xs);
          XsIndex = PIndex;
        }
        XsPtr = Xs.data();
        NumXs = Xs.size();
      }
      const uint64_t *YsPtr;
      uint64_t NumYs;
      if (Grid.Members) {
        YsPtr = Grid.Members->members(Index % Grid.NumTnums);
        NumYs = Grid.Members->numMembers(Index % Grid.NumTnums);
      } else {
        materializeMembers(Q, Ys);
        YsPtr = Ys.data();
        NumYs = Ys.size();
      }
      Best = optimalAbstractBinaryMembers(Op, Grid.Width, XsPtr, NumXs,
                                          YsPtr, NumYs, Kernels);
    } else {
      Best = optimalAbstractBinary(Op, P, Q, Grid.Width);
    }
    if (Actual == Best)
      ++Optimal;
  }
  Report.OptimalPairs = Optimal;
}

/// The per-cell pair totals of \p Spec (one grid dimension per width).
std::vector<uint64_t> specCellPairs(const CampaignSpec &Spec) {
  std::vector<uint64_t> CellPairs;
  CellPairs.reserve(Spec.Cells.size());
  for (const CampaignCell &Cell : Spec.Cells) {
    uint64_t NumTnums = numWellFormedTnums(Cell.Width);
    CellPairs.push_back(NumTnums * NumTnums);
  }
  return CellPairs;
}

/// The per-cell content fingerprints of \p Spec.
std::vector<uint64_t> specCellFingerprints(const CampaignSpec &Spec) {
  std::vector<uint64_t> Fingerprints;
  Fingerprints.reserve(Spec.Cells.size());
  for (const CampaignCell &Cell : Spec.Cells)
    Fingerprints.push_back(campaignCellFingerprint(Spec, Cell));
  return Fingerprints;
}

} // namespace

//===----------------------------------------------------------------------===//
// runPropertyCampaign -- the driver-registry layer over
// driveCampaignShards: derives stored fingerprints from (content,
// property name, payload version), stamps the payload header on every
// shard a driver produces, and verifies + strips it before any driver
// merges bytes back.
//===----------------------------------------------------------------------===//

ShardDriveResult tnums::runPropertyCampaign(
    const std::vector<PropertyCampaignCell> &Cells, uint64_t Fingerprint,
    const CampaignIO &IO, std::vector<bool> *CellComplete,
    std::vector<CellShardCounts> *CellCounts) {
  std::vector<uint64_t> CellPairs;
  std::vector<uint64_t> CellFingerprints;
  CellPairs.reserve(Cells.size());
  CellFingerprints.reserve(Cells.size());
  for (const PropertyCampaignCell &Cell : Cells) {
    assert(Cell.Driver && "every property cell needs a driver");
    CellPairs.push_back(Cell.TotalPairs);
    CellFingerprints.push_back(
        propertyCellFingerprint(Cell.ContentFingerprint, Cell.Driver->name(),
                                Cell.Driver->payloadVersion()));
  }
  RunShardFn Run = [&](size_t Cell, uint64_t Begin, uint64_t End,
                       ShardRecord &Out) {
    PropertyDriver &Driver = *Cells[Cell].Driver;
    std::string Body;
    bool Terminal = false;
    Driver.runShard(Cell, Begin, End, Body, Terminal);
    Out.Payload = payloadHeaderLine(Driver.name(), Driver.payloadVersion());
    Out.Payload += Body;
    Out.Terminal = Terminal;
  };
  MergeShardFn Merge = [&](size_t Cell, uint64_t Begin, uint64_t End,
                           const ShardRecord &Record,
                           std::string &Error) -> bool {
    PropertyDriver &Driver = *Cells[Cell].Driver;
    std::string Body;
    if (!stripPayloadHeader(Record.Payload, Driver.name(),
                            Driver.payloadVersion(), Cell, Body, Error))
      return false;
    return Driver.mergeShard(Cell, Begin, End, Body, Error);
  };
  return driveCampaignShards(CellPairs, CellFingerprints, Fingerprint, IO,
                             Run, Merge, CellComplete, CellCounts);
}

//===----------------------------------------------------------------------===//
// The built-in property drivers + runCampaign
//===----------------------------------------------------------------------===//

namespace {

/// State the four built-in drivers share: the spec and scheduling config,
/// the per-invocation result cells they fold into, and one sweep grid
/// (universe + member table) per width, shared by every cell, shard, and
/// property at that width and built on first use.
struct CampaignEngine {
  const CampaignSpec &Spec;
  const SweepConfig &Config;
  CampaignResult &Result;
  std::map<unsigned, SweepGrid> Grids;

  const SweepGrid &gridFor(unsigned Width) {
    auto It = Grids.find(Width);
    if (It == Grids.end())
      It = Grids.emplace(Width, makeSweepGrid(Width, Config)).first;
    return It->second;
  }

  AbstractBinaryFn abstractFor(const CampaignCell &Cell) const {
    unsigned Width = Cell.Width;
    if (Spec.overrideApplies(Cell)) {
      OperatorOverrideFn Override = Spec.OperatorOverride;
      return [Override, Width](const Tnum &P, const Tnum &Q) {
        return Override(P, Q, Width);
      };
    }
    BinaryOp Op = Cell.Op;
    MulAlgorithm Mul = Cell.Mul;
    return [Op, Mul, Width](const Tnum &P, const Tnum &Q) {
      return applyAbstractBinary(Op, P, Q, Width, Mul);
    };
  }
};

/// Built-in driver plumbing: name and payload version come from the
/// property enum, merging goes through the shared mergePropertyShard
/// fold (also used by the baseline loader).
class BuiltinPropertyDriver : public PropertyDriver {
protected:
  CampaignEngine &Engine;
  const CampaignProperty Property;

  BuiltinPropertyDriver(CampaignEngine &Engine, CampaignProperty Property)
      : Engine(Engine), Property(Property) {}

  const CampaignCell &cell(size_t Index) const {
    return Engine.Spec.Cells[Index];
  }

public:
  const char *name() const override { return campaignPropertyName(Property); }
  unsigned payloadVersion() const override {
    return campaignPropertyPayloadVersion(Property);
  }
  bool mergeShard(size_t Cell, uint64_t, uint64_t,
                  const std::string &Payload, std::string &Error) override {
    return mergePropertyShard(Engine.Result.Cells[Cell], Cell, Payload,
                              Error);
  }
};

class SoundnessDriver final : public BuiltinPropertyDriver {
public:
  explicit SoundnessDriver(CampaignEngine &Engine)
      : BuiltinPropertyDriver(Engine, CampaignProperty::Soundness) {}

  void runShard(size_t CellIndex, uint64_t Begin, uint64_t End,
                std::string &Payload, bool &Terminal) override {
    const CampaignCell &Cell = cell(CellIndex);
    const SweepGrid &Grid = Engine.gridFor(Cell.Width);
    auto Start = std::chrono::steady_clock::now();
    std::optional<uint64_t> FailIndex;
    SoundnessReport Report =
        checkSoundnessRangeParallel(Cell.Op, Engine.abstractFor(Cell), Grid,
                                    Begin, End, Engine.Config, &FailIndex);
    if (Report.Failure) {
      normalizeSoundnessFailure(Cell.Op, Grid, Begin, *FailIndex, Report);
      Terminal = true; // Soundness cells stop at the first witness.
    }
    std::chrono::duration<double> Elapsed =
        std::chrono::steady_clock::now() - Start;
    Payload = serializeSoundnessShard(Report, Elapsed.count());
  }
};

class OptimalityDriver final : public BuiltinPropertyDriver {
public:
  explicit OptimalityDriver(CampaignEngine &Engine)
      : BuiltinPropertyDriver(Engine, CampaignProperty::Optimality) {}

  void runShard(size_t CellIndex, uint64_t Begin, uint64_t End,
                std::string &Payload, bool &Terminal) override {
    const CampaignCell &Cell = cell(CellIndex);
    const SweepGrid &Grid = Engine.gridFor(Cell.Width);
    auto Start = std::chrono::steady_clock::now();
    std::optional<uint64_t> FailIndex;
    OptimalityReport Report = checkOptimalityRangeParallel(
        Cell.Op, Cell.Mul, Grid, Begin, End, Engine.Config,
        /*StopAtFirst=*/Engine.Spec.OptimalityEarlyExit, &FailIndex);
    if (Report.Failure && Engine.Spec.OptimalityEarlyExit) {
      normalizeOptimalityFailure(Cell.Op, Cell.Mul, Grid, Engine.Config,
                                 Begin, *FailIndex, Report);
      Terminal = true;
    }
    std::chrono::duration<double> Elapsed =
        std::chrono::steady_clock::now() - Start;
    Payload = serializeOptimalityShard(Report, Elapsed.count());
  }
};

class MonotonicityDriver final : public BuiltinPropertyDriver {
public:
  explicit MonotonicityDriver(CampaignEngine &Engine)
      : BuiltinPropertyDriver(Engine, CampaignProperty::Monotonicity) {}

  void runShard(size_t CellIndex, uint64_t Begin, uint64_t End,
                std::string &Payload, bool &Terminal) override {
    const CampaignCell &Cell = cell(CellIndex);
    const SweepGrid &Grid = Engine.gridFor(Cell.Width);
    auto Start = std::chrono::steady_clock::now();
    std::optional<uint64_t> FailIndex;
    MonotonicityReport Report = checkMonotonicityRangeParallel(
        Cell.Op, Cell.Mul, Grid, Begin, End, Engine.Config, &FailIndex);
    if (Report.Failure) {
      normalizeMonotonicityFailure(Cell.Op, Cell.Mul, Grid, Begin,
                                   *FailIndex, Report);
      Terminal = true;
    }
    std::chrono::duration<double> Elapsed =
        std::chrono::steady_clock::now() - Start;
    Payload = serializeMonotonicityShard(Report, Elapsed.count());
  }
};

class PrecisionDriver final : public BuiltinPropertyDriver {
public:
  explicit PrecisionDriver(CampaignEngine &Engine)
      : BuiltinPropertyDriver(Engine, CampaignProperty::Precision) {}

  void runShard(size_t CellIndex, uint64_t Begin, uint64_t End,
                std::string &Payload, bool &) override {
    struct ScanMetrics {
      Counter Cells{"tnums_precision_cells_total"};
    };
    static ScanMetrics Metrics;
    if (Begin == 0)
      Metrics.Cells.add(1);
    // A measurement has no terminal shards: every pair is scanned.
    const CampaignCell &Cell = cell(CellIndex);
    const SweepGrid &Grid = Engine.gridFor(Cell.Width);
    auto Start = std::chrono::steady_clock::now();
    PrecisionReport Report =
        checkPrecisionRangeParallel(Cell.Op, Engine.abstractFor(Cell), Grid,
                                    Begin, End, Engine.Config);
    std::chrono::duration<double> Elapsed =
        std::chrono::steady_clock::now() - Start;
    Payload = serializePrecisionShard(Report, Elapsed.count());
  }

  bool mergeShard(size_t Cell, uint64_t Begin, uint64_t End,
                  const std::string &Payload, std::string &Error) override {
    struct MergeMetrics {
      Histogram MergeNs{"tnums_precision_merge_ns"};
    };
    static MergeMetrics Metrics;
    const uint64_t StartNs = metricsEnabled() ? traceNowNs() : 0;
    bool Ok =
        BuiltinPropertyDriver::mergeShard(Cell, Begin, End, Payload, Error);
    if (metricsEnabled())
      Metrics.MergeNs.record(traceNowNs() - StartNs);
    return Ok;
  }
};

} // namespace

CampaignResult tnums::runCampaign(const CampaignSpec &Spec,
                                  const CampaignIO &IO,
                                  const SweepConfig &Config) {
  CampaignResult Result;
  if (Spec.OperatorOverride && Spec.OverrideTag.empty()) {
    Result.Error = "an OperatorOverride requires an OverrideTag (the "
                   "fingerprint cannot hash a function)";
    return Result;
  }
  for (const CampaignCell &Cell : Spec.Cells)
    if (isShiftOp(Cell.Op) && (Cell.Width & (Cell.Width - 1)) != 0) {
      Result.Error = formatString(
          "cell %s/%s: shift verification requires a power-of-two width, "
          "got %u",
          binaryOpName(Cell.Op), campaignPropertyName(Cell.Property),
          Cell.Width);
      return Result;
    }

  std::vector<uint64_t> CellPairs = specCellPairs(Spec);

  Result.Cells.resize(Spec.Cells.size());
  for (size_t I = 0; I != Spec.Cells.size(); ++I)
    Result.Cells[I].Cell = Spec.Cells[I];

  CampaignEngine Engine{Spec, Config, Result, {}};
  SoundnessDriver Soundness(Engine);
  OptimalityDriver Optimality(Engine);
  MonotonicityDriver Monotonicity(Engine);
  PrecisionDriver Precision(Engine);
  auto driverFor = [&](CampaignProperty Property) -> PropertyDriver * {
    switch (Property) {
    case CampaignProperty::Soundness:
      return &Soundness;
    case CampaignProperty::Optimality:
      return &Optimality;
    case CampaignProperty::Monotonicity:
      return &Monotonicity;
    case CampaignProperty::Precision:
      return &Precision;
    }
    return nullptr;
  };

  std::vector<PropertyCampaignCell> Cells;
  Cells.reserve(Spec.Cells.size());
  for (size_t I = 0; I != Spec.Cells.size(); ++I)
    Cells.push_back(PropertyCampaignCell{
        CellPairs[I], cellContentFingerprint(Spec, Spec.Cells[I]),
        driverFor(Spec.Cells[I].Property)});

  std::vector<bool> CellComplete;
  std::vector<CellShardCounts> CellCounts;
  uint64_t Fingerprint = campaignFingerprint(Spec, IO);
  ShardDriveResult Drive = runPropertyCampaign(Cells, Fingerprint, IO,
                                               &CellComplete, &CellCounts);
  Result.ShardsTotal = Drive.ShardsTotal;
  Result.ShardsRun = Drive.ShardsRun;
  Result.ShardsResumed = Drive.ShardsResumed;
  Result.ShardsSkipped = Drive.ShardsSkipped;
  Result.ShardsInvalidated = Drive.ShardsInvalidated;
  if (!Drive.ok()) {
    Result.Error = std::move(Drive.Error);
    return Result;
  }
  Result.Complete = Drive.Complete;
  for (size_t I = 0; I != Result.Cells.size(); ++I) {
    Result.Cells[I].Complete = CellComplete[I];
    Result.Cells[I].ShardsRun = CellCounts[I].Run;
    Result.Cells[I].ShardsResumed = CellCounts[I].Resumed;
    Result.Cells[I].ShardsInvalidated = CellCounts[I].Invalidated;
    Result.Cells[I].ShardsSkipped = CellCounts[I].Skipped;
    // ShardsTotal per cell: count manifest entries (recompute cheaply;
    // the (Total - 1) form cannot overflow for huge ShardPairs).
    uint64_t Total = CellPairs[I];
    Result.Cells[I].ShardsTotal =
        Total == 0 ? 1 : (Total - 1) / IO.ShardPairs + 1;
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// diffCampaignBaseline
//===----------------------------------------------------------------------===//

namespace {

/// Field-wise equality of the property-relevant report of two merged
/// cells (counters AND witness; the informational Seconds is ignored).
bool sameMergedReport(const CampaignCellResult &A,
                      const CampaignCellResult &B) {
  switch (A.Cell.Property) {
  case CampaignProperty::Soundness: {
    if (A.Soundness.PairsChecked != B.Soundness.PairsChecked ||
        A.Soundness.ConcreteChecked != B.Soundness.ConcreteChecked ||
        A.Soundness.Failure.has_value() != B.Soundness.Failure.has_value())
      return false;
    if (!A.Soundness.Failure)
      return true;
    const SoundnessCounterexample &X = *A.Soundness.Failure;
    const SoundnessCounterexample &Y = *B.Soundness.Failure;
    return X.P == Y.P && X.Q == Y.Q && X.X == Y.X && X.Y == Y.Y &&
           X.Z == Y.Z && X.R == Y.R;
  }
  case CampaignProperty::Optimality: {
    if (A.Optimality.PairsChecked != B.Optimality.PairsChecked ||
        A.Optimality.OptimalPairs != B.Optimality.OptimalPairs ||
        A.Optimality.Failure.has_value() != B.Optimality.Failure.has_value())
      return false;
    if (!A.Optimality.Failure)
      return true;
    const OptimalityCounterexample &X = *A.Optimality.Failure;
    const OptimalityCounterexample &Y = *B.Optimality.Failure;
    return X.P == Y.P && X.Q == Y.Q && X.Actual == Y.Actual &&
           X.Optimal == Y.Optimal;
  }
  case CampaignProperty::Monotonicity: {
    if (A.Monotonicity.QuadruplesChecked !=
            B.Monotonicity.QuadruplesChecked ||
        A.Monotonicity.Failure.has_value() !=
            B.Monotonicity.Failure.has_value())
      return false;
    if (!A.Monotonicity.Failure)
      return true;
    const MonotonicityCounterexample &X = *A.Monotonicity.Failure;
    const MonotonicityCounterexample &Y = *B.Monotonicity.Failure;
    return X.P1 == Y.P1 && X.Q1 == Y.Q1 && X.P2 == Y.P2 && X.Q2 == Y.Q2 &&
           X.R1 == Y.R1 && X.R2 == Y.R2;
  }
  case CampaignProperty::Precision: {
    if (A.Precision.PairsChecked != B.Precision.PairsChecked ||
        A.Precision.SumGap != B.Precision.SumGap ||
        A.Precision.MaxGap != B.Precision.MaxGap ||
        A.Precision.Worst.has_value() != B.Precision.Worst.has_value())
      return false;
    for (unsigned G = 0; G != PrecisionGapBuckets; ++G)
      if (A.Precision.Buckets[G] != B.Precision.Buckets[G])
        return false;
    if (!A.Precision.Worst)
      return true;
    const PrecisionWitness &X = *A.Precision.Worst;
    const PrecisionWitness &Y = *B.Precision.Worst;
    return X.P == Y.P && X.Q == Y.Q && X.Actual == Y.Actual &&
           X.Optimal == Y.Optimal && X.Gap == Y.Gap;
  }
  }
  return false;
}

/// "mul[our_mul]/w6"-style cell coordinates for the precision-delta
/// lines (the property is implied; only Precision cells are printed).
std::string precisionCellLabel(const CampaignCell &Cell) {
  if (Cell.Op == BinaryOp::Mul)
    return formatString("mul[%s]/w%u", mulAlgorithmName(Cell.Mul),
                        Cell.Width);
  return formatString("%s/w%u", binaryOpName(Cell.Op), Cell.Width);
}

} // namespace

CampaignDiffResult tnums::diffCampaignBaseline(const CampaignSpec &Spec,
                                               const CampaignIO &IO,
                                               const std::string &BaselineDir,
                                               const CampaignResult &Current) {
  CampaignDiffResult Diff;
  if (Current.Cells.size() != Spec.Cells.size()) {
    Diff.Error = "diff baseline: Current does not match Spec";
    return Diff;
  }
  std::vector<uint64_t> CellPairs = specCellPairs(Spec);
  std::vector<uint64_t> CellFingerprints = specCellFingerprints(Spec);
  const std::vector<ShardRef> Manifest =
      buildManifest(CellPairs, IO.ShardPairs);

  // A diff is a READ: a mistyped baseline path must be a hard error, not
  // a freshly created empty store reporting "0 cells reused" -- so check
  // for the manifest before open() (which would create dir + manifest).
  struct stat St;
  if (::stat((BaselineDir + "/campaign.manifest").c_str(), &St) != 0) {
    Diff.Error = formatString(
        "%s is not a campaign checkpoint directory (no campaign.manifest)",
        BaselineDir.c_str());
    return Diff;
  }

  // The baseline must be the same campaign SHAPE; its cell fingerprints
  // may of course differ -- that difference is the report.
  std::string Error;
  std::optional<CheckpointStore> Store = CheckpointStore::open(
      BaselineDir, campaignFingerprint(Spec, IO), Manifest.size(), Error);
  if (!Store) {
    Diff.Error = std::move(Error);
    return Diff;
  }

  Diff.Cells.resize(Spec.Cells.size());
  for (size_t Cell = 0; Cell != Spec.Cells.size(); ++Cell) {
    CampaignCellDiff &Out = Diff.Cells[Cell];
    Out.Cell = Spec.Cells[Cell];
    Out.Baseline.Cell = Spec.Cells[Cell];
    bool Complete = true;
    bool Consistent = true;
    for (uint64_t Id = 0; Id != Manifest.size() && Consistent; ++Id) {
      const ShardRef &Ref = Manifest[Id];
      if (Ref.Cell != Cell)
        continue;
      if (!Store->hasShard(Id)) {
        Complete = false;
        break;
      }
      std::optional<ShardRecord> Record = Store->loadShard(Id, Error);
      if (!Record) {
        Diff.Error = Error.empty()
                         ? formatString("baseline shard %" PRIu64
                                        " vanished",
                                        Id)
                         : std::move(Error);
        return Diff;
      }
      if (Record->Cell != Ref.Cell) {
        Diff.Error = formatString(
            "baseline shard %" PRIu64 " records cell %" PRIu64
            " but the manifest places it in cell %zu; the store is corrupt",
            Id, Record->Cell, Ref.Cell);
        return Diff;
      }
      if (!Out.InBaseline) {
        Out.InBaseline = true;
        Out.BaselineFingerprint = Record->CellFingerprint;
      } else if (Record->CellFingerprint != Out.BaselineFingerprint) {
        // A half-migrated cell (some shards re-run under a newer operator
        // than others) has no single coherent baseline verdict.
        Consistent = false;
        break;
      }
      // Baseline shards carry the same engine-stamped payload header as
      // live ones; verify and strip it with the same helper so a
      // baseline from an incompatible payload version is refused, not
      // misparsed.
      std::string Body;
      if (!stripPayloadHeader(
              Record->Payload, campaignPropertyName(Out.Cell.Property),
              campaignPropertyPayloadVersion(Out.Cell.Property), Cell, Body,
              Error) ||
          !mergePropertyShard(Out.Baseline, Cell, Body, Error)) {
        Diff.Error = std::move(Error);
        return Diff;
      }
      if (Record->Terminal)
        break; // The cell's merge ends here by construction.
    }
    Out.BaselineComplete = Out.InBaseline && Complete && Consistent;
    Out.Baseline.Complete = Out.BaselineComplete;
    Out.Reused = Out.InBaseline &&
                 Out.BaselineFingerprint == CellFingerprints[Cell];
    if (Out.InBaseline)
      ++(Out.Reused ? Diff.CellsReused : Diff.CellsRerun);
    if (Out.BaselineComplete && Current.Cells[Cell].Complete) {
      Out.ReportChanged = !sameMergedReport(Out.Baseline, Current.Cells[Cell]);
      Out.VerdictChanged =
          Out.Baseline.holds() != Current.Cells[Cell].holds();
      if (Out.VerdictChanged)
        ++Diff.CellsVerdictChanged;
    }
  }
  return Diff;
}

uint64_t tnums::printPrecisionDeltas(const CampaignSpec &Spec,
                                     const CampaignDiffResult &Diff,
                                     const CampaignResult &Current,
                                     std::FILE *Out) {
  uint64_t Deltas = 0;
  assert(Diff.Cells.size() == Spec.Cells.size() &&
         Current.Cells.size() == Spec.Cells.size() &&
         "diff/current must match the spec");
  for (size_t I = 0; I != Diff.Cells.size(); ++I) {
    const CampaignCellDiff &Cell = Diff.Cells[I];
    if (Cell.Cell.Property != CampaignProperty::Precision)
      continue;
    if (!Cell.BaselineComplete || !Current.Cells[I].Complete ||
        !Cell.ReportChanged)
      continue;
    const PrecisionReport &Old = Cell.Baseline.Precision;
    const PrecisionReport &New = Current.Cells[I].Precision;
    std::fprintf(Out,
                 "precision delta %s: sum_gap %llu -> %llu, max_gap %u -> "
                 "%u\n",
                 precisionCellLabel(Cell.Cell).c_str(),
                 static_cast<unsigned long long>(Old.SumGap),
                 static_cast<unsigned long long>(New.SumGap), Old.MaxGap,
                 New.MaxGap);
    ++Deltas;
  }
  std::fprintf(Out, "%llu precision deltas vs baseline\n",
               static_cast<unsigned long long>(Deltas));
  return Deltas;
}

//===----------------------------------------------------------------------===//
// sweepMulSoundness -- now a thin wrapper over the campaign engine
//===----------------------------------------------------------------------===//

std::vector<MulSweepResult>
tnums::sweepMulSoundness(const std::vector<unsigned> &Widths,
                         const SweepConfig &Config) {
  CampaignSpec Spec;
  for (unsigned Width : Widths)
    for (MulAlgorithm Algorithm : AllMulAlgorithms)
      Spec.Cells.push_back(CampaignCell{BinaryOp::Mul, Algorithm, Width,
                                        CampaignProperty::Soundness});
  // In-memory, single-invocation: one shard per cell keeps the scheduling
  // identical to the pre-campaign full-grid sweep.
  CampaignIO IO;
  IO.ShardPairs = UINT64_MAX;
  CampaignResult Campaign = runCampaign(Spec, IO, Config);
  assert(Campaign.ok() && Campaign.Complete &&
         "in-memory mul campaign cannot fail to run");
  std::vector<MulSweepResult> Results;
  Results.reserve(Campaign.Cells.size());
  for (const CampaignCellResult &Cell : Campaign.Cells)
    Results.push_back(MulSweepResult{Cell.Cell.Mul, Cell.Cell.Width,
                                     Cell.Soundness, Cell.Seconds});
  return Results;
}
