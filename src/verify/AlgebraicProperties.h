//===- verify/AlgebraicProperties.h - Algebraic property search -*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Search procedures for the three non-obvious properties the paper's
/// bounded verification uncovered (§III-A): (1) tnum addition is not
/// associative, (2) tnum addition and subtraction are not inverses, and
/// (3) the kernel's tnum multiplication is not commutative. Each search
/// either finds a concrete witness tuple at the given width or proves the
/// property by exhaustion.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_VERIFY_ALGEBRAICPROPERTIES_H
#define TNUMS_VERIFY_ALGEBRAICPROPERTIES_H

#include "tnum/Tnum.h"
#include "tnum/TnumMul.h"

#include <optional>

namespace tnums {

/// Witness that (P + Q) + R != P + (Q + R) under tnum_add.
struct AssociativityWitness {
  Tnum P;
  Tnum Q;
  Tnum R;
  Tnum LeftFirst;  ///< tnum_add(tnum_add(P, Q), R)
  Tnum RightFirst; ///< tnum_add(P, tnum_add(Q, R))
};

/// Exhaustively searches width-\p Width tnum triples for a witness of
/// tnum_add non-associativity. Returns std::nullopt if addition is
/// associative at that width (it is not for Width >= 2). Cost 27^Width.
std::optional<AssociativityWitness>
findAddNonAssociativityWitness(unsigned Width);

/// Witness that tnum_sub(tnum_add(P, Q), Q) != P: addition followed by
/// subtraction of the same abstract operand does not return P.
struct InverseWitness {
  Tnum P;
  Tnum Q;
  Tnum RoundTrip; ///< tnum_sub(tnum_add(P, Q), Q)
};

/// Exhaustively searches width-\p Width pairs for a witness that add/sub
/// are not inverse operations.
std::optional<InverseWitness> findAddSubNonInverseWitness(unsigned Width);

/// Witness that op(P, Q) != op(Q, P).
struct CommutativityWitness {
  Tnum P;
  Tnum Q;
  Tnum Forward;  ///< op(P, Q)
  Tnum Backward; ///< op(Q, P)
};

/// Exhaustively searches width-\p Width pairs for a commutativity violation
/// of multiplication algorithm \p Mul. kern_mul yields a witness
/// (observation 3 of §III-A); our_mul does too (partial products are built
/// from P's trits but Q's bits), which is fine -- commutativity is not a
/// soundness requirement.
std::optional<CommutativityWitness>
findMulNonCommutativityWitness(MulAlgorithm Mul, unsigned Width);

/// Exhaustively checks that tnum_add is commutative at \p Width (it is:
/// the algorithm is symmetric in P and Q).
std::optional<CommutativityWitness>
findAddNonCommutativityWitness(unsigned Width);

} // namespace tnums

#endif // TNUMS_VERIFY_ALGEBRAICPROPERTIES_H
