//===- verify/Oracle.cpp - Concrete/abstract operator pairs ---------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "verify/Oracle.h"

#include "support/Checkpoint.h"
#include "tnum/TnumOps.h"

using namespace tnums;

const char *tnums::binaryOpName(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "add";
  case BinaryOp::Sub:
    return "sub";
  case BinaryOp::Mul:
    return "mul";
  case BinaryOp::Div:
    return "div";
  case BinaryOp::Mod:
    return "mod";
  case BinaryOp::And:
    return "and";
  case BinaryOp::Or:
    return "or";
  case BinaryOp::Xor:
    return "xor";
  case BinaryOp::Lsh:
    return "lsh";
  case BinaryOp::Rsh:
    return "rsh";
  case BinaryOp::Arsh:
    return "arsh";
  }
  assert(false && "unknown binary op");
  return "unknown";
}

bool tnums::isShiftOp(BinaryOp Op) {
  return Op == BinaryOp::Lsh || Op == BinaryOp::Rsh || Op == BinaryOp::Arsh;
}

bool tnums::hasFusedSimdKernel(BinaryOp Op, unsigned Width) {
  switch (Op) {
  case BinaryOp::Add:
  case BinaryOp::Sub:
  case BinaryOp::And:
  case BinaryOp::Or:
  case BinaryOp::Xor:
    return true;
  case BinaryOp::Mul:
    // The fused mul lanes use a 32x32 low multiply, exact only while both
    // operands and the product stay under 2^32 -- i.e. Width <= 16, which
    // covers every enumerable sweep width.
    return Width <= 16;
  default:
    return false;
  }
}

uint64_t tnums::applyConcreteBinary(BinaryOp Op, uint64_t X, uint64_t Y,
                                    unsigned Width) {
  X = truncateToWidth(X, Width);
  Y = truncateToWidth(Y, Width);
  switch (Op) {
  case BinaryOp::Add:
    return truncateToWidth(X + Y, Width);
  case BinaryOp::Sub:
    return truncateToWidth(X - Y, Width);
  case BinaryOp::Mul:
    return truncateToWidth(X * Y, Width);
  case BinaryOp::Div:
    return Y == 0 ? 0 : X / Y; // BPF: division by zero yields 0.
  case BinaryOp::Mod:
    return Y == 0 ? X : X % Y; // BPF: modulo by zero yields the dividend.
  case BinaryOp::And:
    return X & Y;
  case BinaryOp::Or:
    return X | Y;
  case BinaryOp::Xor:
    return X ^ Y;
  case BinaryOp::Lsh:
    assert((Width & (Width - 1)) == 0 && "shift semantics need 2^k width");
    return truncateToWidth(X << (Y & (Width - 1)), Width);
  case BinaryOp::Rsh:
    assert((Width & (Width - 1)) == 0 && "shift semantics need 2^k width");
    return X >> (Y & (Width - 1));
  case BinaryOp::Arsh:
    assert((Width & (Width - 1)) == 0 && "shift semantics need 2^k width");
    return arithmeticShiftRight(X, static_cast<unsigned>(Y & (Width - 1)),
                                Width);
  }
  assert(false && "unknown binary op");
  return 0;
}

void tnums::applyConcreteBinaryBatch(BinaryOp Op, uint64_t X,
                                     const uint64_t *Ys, uint64_t *Zs,
                                     unsigned N, unsigned Width) {
  const uint64_t WMask = lowBitsMask(Width);
  X &= WMask;
  switch (Op) {
  case BinaryOp::Add:
    for (unsigned I = 0; I != N; ++I)
      Zs[I] = (X + (Ys[I] & WMask)) & WMask;
    return;
  case BinaryOp::Sub:
    for (unsigned I = 0; I != N; ++I)
      Zs[I] = (X - (Ys[I] & WMask)) & WMask;
    return;
  case BinaryOp::Mul:
    for (unsigned I = 0; I != N; ++I)
      Zs[I] = (X * (Ys[I] & WMask)) & WMask;
    return;
  case BinaryOp::Div:
    for (unsigned I = 0; I != N; ++I) {
      uint64_t Y = Ys[I] & WMask;
      Zs[I] = Y == 0 ? 0 : X / Y;
    }
    return;
  case BinaryOp::Mod:
    for (unsigned I = 0; I != N; ++I) {
      uint64_t Y = Ys[I] & WMask;
      Zs[I] = Y == 0 ? X : X % Y;
    }
    return;
  case BinaryOp::And:
    for (unsigned I = 0; I != N; ++I)
      Zs[I] = X & Ys[I] & WMask;
    return;
  case BinaryOp::Or:
    for (unsigned I = 0; I != N; ++I)
      Zs[I] = X | (Ys[I] & WMask);
    return;
  case BinaryOp::Xor:
    for (unsigned I = 0; I != N; ++I)
      Zs[I] = X ^ (Ys[I] & WMask);
    return;
  case BinaryOp::Lsh:
    assert((Width & (Width - 1)) == 0 && "shift semantics need 2^k width");
    for (unsigned I = 0; I != N; ++I)
      Zs[I] = (X << (Ys[I] & WMask & (Width - 1))) & WMask;
    return;
  case BinaryOp::Rsh:
    assert((Width & (Width - 1)) == 0 && "shift semantics need 2^k width");
    for (unsigned I = 0; I != N; ++I)
      Zs[I] = X >> (Ys[I] & WMask & (Width - 1));
    return;
  case BinaryOp::Arsh:
    assert((Width & (Width - 1)) == 0 && "shift semantics need 2^k width");
    for (unsigned I = 0; I != N; ++I)
      Zs[I] = arithmeticShiftRight(
          X, static_cast<unsigned>(Ys[I] & WMask & (Width - 1)), Width);
    return;
  }
  assert(false && "unknown binary op");
}

void tnums::applyConcreteBinaryBatchLhs(BinaryOp Op, const uint64_t *Xs,
                                        uint64_t Y, uint64_t *Zs, unsigned N,
                                        unsigned Width) {
  const uint64_t WMask = lowBitsMask(Width);
  Y &= WMask;
  switch (Op) {
  case BinaryOp::Add:
    for (unsigned I = 0; I != N; ++I)
      Zs[I] = ((Xs[I] & WMask) + Y) & WMask;
    return;
  case BinaryOp::Sub:
    for (unsigned I = 0; I != N; ++I)
      Zs[I] = ((Xs[I] & WMask) - Y) & WMask;
    return;
  case BinaryOp::Mul:
    for (unsigned I = 0; I != N; ++I)
      Zs[I] = ((Xs[I] & WMask) * Y) & WMask;
    return;
  case BinaryOp::Div:
    for (unsigned I = 0; I != N; ++I)
      Zs[I] = Y == 0 ? 0 : (Xs[I] & WMask) / Y;
    return;
  case BinaryOp::Mod:
    for (unsigned I = 0; I != N; ++I)
      Zs[I] = Y == 0 ? (Xs[I] & WMask) : (Xs[I] & WMask) % Y;
    return;
  case BinaryOp::And:
    for (unsigned I = 0; I != N; ++I)
      Zs[I] = Xs[I] & Y & WMask;
    return;
  case BinaryOp::Or:
    for (unsigned I = 0; I != N; ++I)
      Zs[I] = (Xs[I] & WMask) | Y;
    return;
  case BinaryOp::Xor:
    for (unsigned I = 0; I != N; ++I)
      Zs[I] = (Xs[I] & WMask) ^ Y;
    return;
  case BinaryOp::Lsh:
    assert((Width & (Width - 1)) == 0 && "shift semantics need 2^k width");
    for (unsigned I = 0; I != N; ++I)
      Zs[I] = ((Xs[I] & WMask) << (Y & (Width - 1))) & WMask;
    return;
  case BinaryOp::Rsh:
    assert((Width & (Width - 1)) == 0 && "shift semantics need 2^k width");
    for (unsigned I = 0; I != N; ++I)
      Zs[I] = (Xs[I] & WMask) >> (Y & (Width - 1));
    return;
  case BinaryOp::Arsh:
    assert((Width & (Width - 1)) == 0 && "shift semantics need 2^k width");
    for (unsigned I = 0; I != N; ++I)
      Zs[I] = arithmeticShiftRight(Xs[I] & WMask,
                                   static_cast<unsigned>(Y & (Width - 1)),
                                   Width);
    return;
  }
  assert(false && "unknown binary op");
}

uint64_t tnums::opFingerprint(BinaryOp Op, MulAlgorithm Mul) {
  const TnumOpVersions &Versions = tnumOpVersions();
  const char *Tag = nullptr;
  switch (Op) {
  case BinaryOp::Add:
    Tag = Versions.Add;
    break;
  case BinaryOp::Sub:
    Tag = Versions.Sub;
    break;
  case BinaryOp::Mul:
    Tag = mulAlgorithmVersion(Mul);
    break;
  case BinaryOp::Div:
    Tag = Versions.Div;
    break;
  case BinaryOp::Mod:
    Tag = Versions.Mod;
    break;
  case BinaryOp::And:
    Tag = Versions.And;
    break;
  case BinaryOp::Or:
    Tag = Versions.Or;
    break;
  case BinaryOp::Xor:
    Tag = Versions.Xor;
    break;
  case BinaryOp::Lsh:
    Tag = Versions.Lshift;
    break;
  case BinaryOp::Rsh:
    Tag = Versions.Rshift;
    break;
  case BinaryOp::Arsh:
    Tag = Versions.Arshift;
    break;
  }
  assert(Tag && "unknown binary op");
  Fnv1a Hash;
  Hash.mixString("tnums-op-fingerprint v1");
  // The operator identity AND the implementation tag: two operators
  // sharing a tag string must still fingerprint apart.
  Hash.mixString(binaryOpName(Op));
  Hash.mixString(Tag);
  return Hash.digest();
}

Tnum tnums::applyAbstractBinary(BinaryOp Op, Tnum P, Tnum Q, unsigned Width,
                                MulAlgorithm Mul) {
  switch (Op) {
  case BinaryOp::Add:
    return tnumTruncate(tnumAdd(P, Q), Width);
  case BinaryOp::Sub:
    return tnumTruncate(tnumSub(P, Q), Width);
  case BinaryOp::Mul:
    return tnumMul(P, Q, Mul, Width);
  case BinaryOp::Div:
    return tnumDiv(P, Q, Width);
  case BinaryOp::Mod:
    return tnumMod(P, Q, Width);
  case BinaryOp::And:
    return tnumAnd(P, Q);
  case BinaryOp::Or:
    return tnumOr(P, Q);
  case BinaryOp::Xor:
    return tnumXor(P, Q);
  case BinaryOp::Lsh:
    return tnumLshiftByTnum(P, Q, Width);
  case BinaryOp::Rsh:
    return tnumRshiftByTnum(P, Q, Width);
  case BinaryOp::Arsh:
    return tnumArshiftByTnum(P, Q, Width);
  }
  assert(false && "unknown binary op");
  return Tnum::makeBottom();
}
