//===- verify/SoundnessChecker.h - Bounded soundness verification -*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable form of the paper's §III-A verification condition (Eqn. 11)
/// for 2-ary operators:
///
///   wellformed(P) ∧ wellformed(Q) ∧ member(x, P) ∧ member(y, Q)
///     ∧ z = opC(x, y) ∧ R = opT(P, Q)  =>  member(z, R)
///
/// The paper discharges this to an SMT solver per bitwidth; with no solver
/// available offline we provide (a) a *complete* decision procedure by
/// exhaustive enumeration at small widths -- equivalent to the bounded SMT
/// query it replaces -- and (b) large randomized refutation campaigns at
/// production width 64. Both produce a solver-style model (counterexample)
/// on failure.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_VERIFY_SOUNDNESSCHECKER_H
#define TNUMS_VERIFY_SOUNDNESSCHECKER_H

#include "support/SimdBatch.h"
#include "verify/Oracle.h"

#include <cstdint>
#include <optional>
#include <string>

namespace tnums {

class Xoshiro256;

/// A violation witness, mirroring an SMT model for the negated soundness
/// formula: concrete inputs X in gamma(P), Y in gamma(Q) whose concrete
/// result Z escapes the abstract result R.
struct SoundnessCounterexample {
  Tnum P;
  Tnum Q;
  uint64_t X;
  uint64_t Y;
  uint64_t Z;
  Tnum R;

  /// Renders the witness for diagnostics, e.g. in test failure messages.
  std::string toString(unsigned Width) const;
};

/// Statistics from a verification run, reported by the E4 harness.
struct SoundnessReport {
  uint64_t PairsChecked = 0;
  uint64_t ConcreteChecked = 0;
  std::optional<SoundnessCounterexample> Failure;

  bool holds() const { return !Failure.has_value(); }
};

/// Complete bounded verification of \p Op at \p Width by enumerating every
/// well-formed tnum pair and every concrete member pair. Cost is 16^Width
/// concrete evaluations; keep Width <= 6 (Width <= 8 only if you can wait).
/// Shift operators additionally require a power-of-two width. \p Simd
/// selects the member-scan path (support/SimdBatch.h); every mode produces
/// a bit-identical report -- SimdMode::Off is the scalar reference the
/// differential tests pin the batched kernels against.
SoundnessReport checkSoundnessExhaustive(BinaryOp Op, unsigned Width,
                                         MulAlgorithm Mul = MulAlgorithm::Our,
                                         SimdMode Simd = SimdMode::Auto);

/// The batched member scan of one (P, Q) cell, shared by the serial and
/// parallel soundness sweeps. \p Ys must be gamma(\p Q) materialized in
/// subset-odometer order (tnum/TnumMembers.h) and \p Kernels a backend
/// from support/SimdBatch.h. Walks X over gamma(P) (outer) against the Y
/// batches (inner) -- the scalar scan's exact order -- growing
/// \p ConcreteChecked by exactly what the scalar scan counts (every
/// evaluation up to and including a violation) and returning the
/// serial-order-first counterexample, if any.
std::optional<SoundnessCounterexample>
scanPairMembersBatched(BinaryOp Op, unsigned Width, const Tnum &P,
                       const Tnum &Q, const Tnum &R, const uint64_t *Ys,
                       uint64_t NumYs, const SimdKernels &Kernels,
                       uint64_t &ConcreteChecked);

/// Randomized refutation campaign at any width (typically 64): draws
/// \p NumPairs random well-formed tnum pairs and, for each, checks
/// \p SamplesPerPair random members plus the four corner members
/// (min/max of each operand). Deterministic given \p Rng's seed.
SoundnessReport checkSoundnessRandom(BinaryOp Op, unsigned Width,
                                     uint64_t NumPairs,
                                     unsigned SamplesPerPair, Xoshiro256 &Rng,
                                     MulAlgorithm Mul = MulAlgorithm::Our);

/// Draws one uniformly-ish random well-formed tnum within \p Width:
/// mask bits are set with probability 1/2 and value bits populate the
/// remaining positions. (Matches the paper's random tnum sampling for the
/// Fig. 5 workload.)
Tnum randomWellFormedTnum(Xoshiro256 &Rng, unsigned Width);

} // namespace tnums

#endif // TNUMS_VERIFY_SOUNDNESSCHECKER_H
