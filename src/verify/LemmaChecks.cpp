//===- verify/LemmaChecks.cpp - Executable paper lemmas -------------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "verify/LemmaChecks.h"

#include "support/Table.h"
#include "tnum/TnumEnum.h"

using namespace tnums;

bool tnums::checkMinCarriesLemma(Tnum P, Tnum Q, unsigned Width) {
  uint64_t WidthMask = lowBitsMask(Width);
  uint64_t Svc = carryInSequence(P.value(), Q.value()) & WidthMask;
  bool Holds = true;
  forEachMember(P, [&](uint64_t X) {
    forEachMember(Q, [&](uint64_t Y) {
      uint64_t Cin = carryInSequence(X, Y) & WidthMask;
      // Every carry set in the sv addition must be set in every concrete
      // addition.
      if ((Svc & ~Cin) != 0)
        Holds = false;
    });
  });
  return Holds;
}

bool tnums::checkMaxCarriesLemma(Tnum P, Tnum Q, unsigned Width) {
  uint64_t WidthMask = lowBitsMask(Width);
  uint64_t SigmaC =
      carryInSequence(P.value() + P.mask(), Q.value() + Q.mask()) & WidthMask;
  bool Holds = true;
  forEachMember(P, [&](uint64_t X) {
    forEachMember(Q, [&](uint64_t Y) {
      uint64_t Cin = carryInSequence(X, Y) & WidthMask;
      // No concrete addition may carry where the Sigma addition did not.
      if ((Cin & ~SigmaC) != 0)
        Holds = false;
    });
  });
  return Holds;
}

bool tnums::checkCaptureUncertaintyLemma(Tnum P, Tnum Q, unsigned Width) {
  uint64_t WidthMask = lowBitsMask(Width);
  uint64_t Svc = carryInSequence(P.value(), Q.value()) & WidthMask;
  uint64_t SigmaC =
      carryInSequence(P.value() + P.mask(), Q.value() + Q.mask()) & WidthMask;
  uint64_t ChiC = Svc ^ SigmaC;

  // AndAll/OrAll fold every concrete carry sequence; a position varies
  // across concrete additions iff OrAll has it and AndAll does not.
  uint64_t AndAll = ~uint64_t(0);
  uint64_t OrAll = 0;
  forEachMember(P, [&](uint64_t X) {
    forEachMember(Q, [&](uint64_t Y) {
      uint64_t Cin = carryInSequence(X, Y) & WidthMask;
      AndAll &= Cin;
      OrAll |= Cin;
    });
  });
  uint64_t Varying = (OrAll & ~AndAll) & WidthMask;
  return ChiC == Varying;
}

bool tnums::checkMaskEquivalenceLemma(Tnum P, Tnum Q) {
  uint64_t Sv = P.value() + Q.value();
  uint64_t Sm = P.mask() + Q.mask();
  uint64_t Sigma = Sv + Sm;
  uint64_t Svc = carryInSequence(P.value(), Q.value());
  uint64_t SigmaC =
      carryInSequence(P.value() + P.mask(), Q.value() + Q.mask());
  uint64_t FromResults = (Sv ^ Sigma) | P.mask() | Q.mask();
  uint64_t FromCarries = (Svc ^ SigmaC) | P.mask() | Q.mask();
  return FromResults == FromCarries;
}

bool tnums::checkMinBorrowsLemma(Tnum P, Tnum Q, unsigned Width) {
  uint64_t WidthMask = lowBitsMask(Width);
  uint64_t BAlpha =
      borrowInSequence(P.value() + P.mask(), Q.value()) & WidthMask;
  bool Holds = true;
  forEachMember(P, [&](uint64_t X) {
    forEachMember(Q, [&](uint64_t Y) {
      uint64_t Bin = borrowInSequence(X, Y) & WidthMask;
      if ((BAlpha & ~Bin) != 0)
        Holds = false;
    });
  });
  return Holds;
}

bool tnums::checkMaxBorrowsLemma(Tnum P, Tnum Q, unsigned Width) {
  uint64_t WidthMask = lowBitsMask(Width);
  uint64_t BBeta =
      borrowInSequence(P.value(), Q.value() + Q.mask()) & WidthMask;
  bool Holds = true;
  forEachMember(P, [&](uint64_t X) {
    forEachMember(Q, [&](uint64_t Y) {
      uint64_t Bin = borrowInSequence(X, Y) & WidthMask;
      if ((Bin & ~BBeta) != 0)
        Holds = false;
    });
  });
  return Holds;
}

bool tnums::checkSetUnionWithZeroLemma(Tnum P) {
  Tnum Q(0, P.value() | P.mask());
  return P.isSubsetOf(Q) && Q.contains(0);
}

bool tnums::checkValueMaskDecomposition(Tnum T, unsigned Width) {
  uint64_t WidthMask = lowBitsMask(Width);
  bool Holds = true;
  forEachMember(T, [&](uint64_t X) {
    // x - T.v must only have bits inside the mask (Property P0). At width n
    // the subtraction cannot borrow past the width because x >= T.v.
    uint64_t Residue = (X - T.value()) & WidthMask;
    if ((Residue & ~T.mask()) != 0)
      Holds = false;
  });
  return Holds;
}

const char *const tnums::AllLemmaNames[] = {
    "min-carries",   "max-carries", "capture-uncertainty",
    "mask-equivalence", "min-borrows", "max-borrows",
    "set-union-zero",   "value-mask-decomp", nullptr};

std::optional<std::string>
tnums::sweepLemmaExhaustive(const std::string &Lemma, unsigned Width) {
  std::vector<Tnum> Universe = allWellFormedTnums(Width);

  // Unary lemmas sweep the universe once.
  if (Lemma == "set-union-zero" || Lemma == "value-mask-decomp") {
    for (const Tnum &P : Universe) {
      bool Holds = Lemma == "set-union-zero"
                       ? checkSetUnionWithZeroLemma(P)
                       : checkValueMaskDecomposition(P, Width);
      if (!Holds)
        return formatString("%s fails at P=%s", Lemma.c_str(),
                            P.toString(Width).c_str());
    }
    return std::nullopt;
  }

  bool (*Check)(Tnum, Tnum, unsigned) = nullptr;
  if (Lemma == "min-carries")
    Check = checkMinCarriesLemma;
  else if (Lemma == "max-carries")
    Check = checkMaxCarriesLemma;
  else if (Lemma == "capture-uncertainty")
    Check = checkCaptureUncertaintyLemma;
  else if (Lemma == "mask-equivalence")
    Check = [](Tnum P, Tnum Q, unsigned) {
      return checkMaskEquivalenceLemma(P, Q);
    };
  else if (Lemma == "min-borrows")
    Check = checkMinBorrowsLemma;
  else if (Lemma == "max-borrows")
    Check = checkMaxBorrowsLemma;
  else
    return formatString("unknown lemma '%s'", Lemma.c_str());

  for (const Tnum &P : Universe)
    for (const Tnum &Q : Universe)
      if (!Check(P, Q, Width))
        return formatString("%s fails at P=%s Q=%s", Lemma.c_str(),
                            P.toString(Width).c_str(),
                            Q.toString(Width).c_str());
  return std::nullopt;
}
