//===- verify/Campaign.h - Checkpointed, sharded campaigns ------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign engine: the paper's exhaustive soundness / optimality /
/// monotonicity verification restated as a declarative spec that compiles
/// to a deterministic shard manifest, survives preemption through the
/// durable shard store (support/Checkpoint.h), splits across machines
/// (--shards=K / --shard-index=i), and merges order-independently into
/// reports that are bit-identical to an uninterrupted serial run.
///
///  * A CampaignSpec is a list of cells (operator x mul-algorithm x width
///    x property). Each cell's row-major (P, Q) pair grid is cut into
///    contiguous shards of CampaignIO::ShardPairs indices; the manifest
///    (cell-major, ranges ascending) is a pure function of the spec and
///    ShardPairs, so every invocation -- any thread count, SIMD mode, or
///    chunk size -- agrees on shard identities. That is what lets shard
///    files from different machines and different runs merge.
///
///  * Shard results are normalized before they are recorded: a failing
///    shard stores the exact *serial-prefix* counters (what the serial
///    checker would have counted walking the shard's range and stopping
///    at the witness) instead of the parallel engine's scheduling-
///    dependent progress counters. Merging therefore reproduces the
///    serial checkers' reports bit-for-bit -- including the serial-order
///    first counterexample -- from ANY interleaving of shard
///    completions, partial resumes, or multi-invocation splits.
///
///  * Optimality cells default to full scans (exact OptimalPairs totals,
///    matching checkOptimalityExhaustive with StopAtFirst = false). With
///    CampaignSpec::OptimalityEarlyExit the first witness-carrying shard
///    is terminal: later shards of that cell are skipped (and may stay
///    missing forever), and the merged report equals the serial
///    StopAtFirst = true report. Soundness and monotonicity cells are
///    always terminal-on-witness, mirroring their serial checkers.
///
/// The generic driver underneath (driveCampaignShards) is also exposed:
/// the Table I / Fig. 4 front ends run their custom order-independent
/// reductions through the same manifest / checkpoint / merge machinery,
/// which is how every sweep front end shares one resume story. See
/// docs/CAMPAIGN.md for the format and the determinism contract.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_VERIFY_CAMPAIGN_H
#define TNUMS_VERIFY_CAMPAIGN_H

#include "support/Checkpoint.h"
#include "verify/ParallelSweep.h"

#include <functional>
#include <string>
#include <vector>

namespace tnums {

/// The properties a campaign can verify per cell.
enum class CampaignProperty : uint8_t {
  Soundness,
  Optimality,
  Monotonicity,
};

/// Stable lower-case name ("soundness", ...).
const char *campaignPropertyName(CampaignProperty Property);

/// One (operator, algorithm, width, property) cell of a campaign. Mul is
/// only meaningful for BinaryOp::Mul cells; keep it MulAlgorithm::Our
/// elsewhere so equal cells fingerprint equally.
struct CampaignCell {
  BinaryOp Op = BinaryOp::Add;
  MulAlgorithm Mul = MulAlgorithm::Our;
  unsigned Width = 4;
  CampaignProperty Property = CampaignProperty::Soundness;
};

/// A declarative campaign: which cells to verify and how optimality
/// cells terminate.
struct CampaignSpec {
  std::vector<CampaignCell> Cells;

  /// First-witness-only optimality (the ROADMAP's deterministic
  /// early-exit mode): an optimality shard that finds a witness is
  /// terminal for its cell, and the merged cell report equals the serial
  /// checker's StopAtFirst = true report.
  bool OptimalityEarlyExit = false;

  /// Test hook: when set, every Soundness cell verifies this operator
  /// instead of applyAbstractBinary(Op, ...), so deliberately broken
  /// transfer functions flow through the full shard/checkpoint/merge
  /// machinery. OverrideTag must then name the override -- it is folded
  /// into the fingerprint in place of the (unhashable) function.
  AbstractBinaryFn SoundnessOverride;
  std::string OverrideTag;

  /// Appends the cross product of \p Properties over \p Widths for one
  /// (Op, Mul) -- the "algorithms x widths x properties" builder.
  void addGrid(BinaryOp Op, MulAlgorithm Mul,
               const std::vector<unsigned> &Widths,
               const std::vector<CampaignProperty> &Properties);
};

/// Sharding / checkpointing knobs, shared by every campaign front end.
struct CampaignIO {
  /// Directory for the durable shard store. Empty runs the campaign
  /// entirely in memory (no resume, single invocation).
  std::string CheckpointDir;

  /// Allow shards this invocation owns to be satisfied by files already
  /// in CheckpointDir. Off (the default) refuses a directory that
  /// already holds owned shards, so stale state is never reused by
  /// accident. Shards owned by OTHER invocations of a --shards split are
  /// always readable at merge time -- that is the farming mode's data
  /// path, not a resume.
  bool Resume = false;

  /// Split the manifest across \p Shards invocations; this invocation
  /// executes the shards with (manifest index % Shards) == ShardIndex.
  /// Requires a CheckpointDir when Shards > 1 (results meet on disk).
  unsigned Shards = 1;
  unsigned ShardIndex = 0;

  /// Pair indices per shard before the final short shard. The manifest
  /// -- and therefore the campaign fingerprint -- depends on this value
  /// and nothing else about scheduling, so a campaign may be resumed
  /// with a different thread count, chunk size, or SIMD mode.
  uint64_t ShardPairs = uint64_t(1) << 20;

  /// Stop executing after this many shards have been RUN this invocation
  /// (0 = unlimited). Time-boxes an invocation at a shard boundary; the
  /// kill-and-resume tests drive it to drop checkpoints mid-flight.
  uint64_t MaxShardsThisRun = 0;
};

/// One cell's merged outcome. Exactly the report field matching
/// Cell.Property is meaningful.
struct CampaignCellResult {
  CampaignCell Cell;
  SoundnessReport Soundness;
  OptimalityReport Optimality;
  MonotonicityReport Monotonicity;

  /// All shards this cell needs were available and merged. (An early-exit
  /// optimality cell is complete at its terminal shard.)
  bool Complete = false;
  uint64_t ShardsTotal = 0;
  uint64_t ShardsMerged = 0;
  /// Compute seconds summed over merged shards (informational: it is the
  /// one merged quantity that is NOT deterministic).
  double Seconds = 0;

  /// Property-specific "no counterexample" (meaningful when Complete).
  bool holds() const;
};

/// Outcome of one runCampaign invocation.
struct CampaignResult {
  /// Every cell merged to completion. False is normal for a partial
  /// --shards / MaxShardsThisRun invocation: the missing shards live in
  /// other invocations, and a later resume merges them.
  bool Complete = false;
  std::vector<CampaignCellResult> Cells; ///< 1:1 with CampaignSpec::Cells.

  uint64_t ShardsTotal = 0;   ///< Manifest size.
  uint64_t ShardsRun = 0;     ///< Executed by this invocation.
  uint64_t ShardsResumed = 0; ///< Owned shards satisfied from checkpoint.
  uint64_t ShardsSkipped = 0; ///< Skipped past a terminal (early-exit) shard.

  /// Non-empty on hard failure (bad IO config, checkpoint mismatch, I/O
  /// error); Cells are then meaningless.
  std::string Error;

  bool ok() const { return Error.empty(); }
};

class ArgParser;

/// Consumes one of the shared campaign flags at \p Args' cursor into
/// \p IO -- --checkpoint-dir D, --resume, --shards K, --shard-index I,
/// --shard-pairs N, --max-shards N -- returning true when it did. The
/// one place the flag names and bounds live; every campaign front end
/// calls this once per parse-loop iteration like the other match*
/// helpers (support/ArgParse.h).
bool matchCampaignArgs(ArgParser &Args, CampaignIO &IO);

/// The usage-string fragment matching matchCampaignArgs, so the front
/// ends' help text cannot drift from the parser.
inline constexpr const char *CampaignArgsUsage =
    "[--checkpoint-dir D] [--resume] [--shards K] [--shard-index I] "
    "[--shard-pairs N] [--max-shards N]";

/// The spec fingerprint guarding checkpoint directories: a digest of the
/// format version, every cell, the early-exit mode, the override tag, and
/// ShardPairs. Scheduling knobs (threads, chunk size, SIMD mode, member
/// table cap) are deliberately excluded -- reports are bit-identical
/// across them, so resuming under a different configuration is sound.
uint64_t campaignFingerprint(const CampaignSpec &Spec, const CampaignIO &IO);

/// Runs (its slice of) the campaign, checkpointing each completed shard,
/// then merges every available shard in manifest order.
CampaignResult runCampaign(const CampaignSpec &Spec, const CampaignIO &IO,
                           const SweepConfig &Config);

//===----------------------------------------------------------------------===//
// Generic sharded reduction -- the driver under runCampaign, exposed for
// front ends whose per-pair work is not one of the three properties (the
// Table I / Fig. 4 walks). Payloads are opaque deterministic strings.
//===----------------------------------------------------------------------===//

/// Aggregate outcome of driveCampaignShards.
struct ShardDriveResult {
  bool Complete = false;
  uint64_t ShardsTotal = 0;
  uint64_t ShardsRun = 0;
  uint64_t ShardsResumed = 0;
  uint64_t ShardsSkipped = 0;
  std::string Error;

  bool ok() const { return Error.empty(); }
};

/// Computes one shard: fill \p Out with the serialized, deterministic
/// result of pair range [\p Begin, \p End) of cell \p Cell. Set
/// Out.Terminal to end the cell at this shard (early exit).
using RunShardFn = std::function<void(size_t Cell, uint64_t Begin,
                                      uint64_t End, ShardRecord &Out)>;

/// Folds one shard into the caller's accumulators. Called in manifest
/// order (cell-major, ranges ascending), never past a terminal shard.
/// Return false (after setting \p Error) on a malformed payload.
using MergeShardFn =
    std::function<bool(size_t Cell, uint64_t Begin, uint64_t End,
                       const ShardRecord &Record, std::string &Error)>;

/// Prints the one-line shard-progress banner every campaign front end
/// emits ("campaign: N shards total, ..."), so the wording cannot drift
/// between benches. The skipped count only appears when nonzero (it is
/// only meaningful for early-exit property campaigns).
void printCampaignStatus(uint64_t ShardsTotal, uint64_t ShardsRun,
                         uint64_t ShardsResumed, uint64_t ShardsSkipped,
                         const std::string &CheckpointDir);

/// Shards each cell's [0, CellTotalPairs[c]) range per \p IO, executes
/// this invocation's slice via \p Run (persisting to IO.CheckpointDir when
/// set), then merges every available shard in manifest order via
/// \p Merge. \p CellComplete (optional, resized to the cell count)
/// reports which cells merged to completion.
ShardDriveResult driveCampaignShards(
    const std::vector<uint64_t> &CellTotalPairs, uint64_t Fingerprint,
    const CampaignIO &IO, const RunShardFn &Run, const MergeShardFn &Merge,
    std::vector<bool> *CellComplete = nullptr);

} // namespace tnums

#endif // TNUMS_VERIFY_CAMPAIGN_H
