//===- verify/Campaign.h - Checkpointed, sharded campaigns ------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign engine: the paper's exhaustive soundness / optimality /
/// monotonicity / precision verification restated as a declarative spec
/// that compiles
/// to a deterministic shard manifest, survives preemption through the
/// durable shard store (support/Checkpoint.h), splits across machines
/// (--shards=K / --shard-index=i), merges order-independently into
/// reports that are bit-identical to an uninterrupted serial run, and --
/// since the v2 store -- re-verifies *incrementally* across transfer-
/// function changes.
///
///  * A CampaignSpec is a list of cells (operator x mul-algorithm x width
///    x property). Each cell's row-major (P, Q) pair grid is cut into
///    contiguous shards of CampaignIO::ShardPairs indices; the manifest
///    (cell-major, ranges ascending) is a pure function of the spec and
///    ShardPairs, so every invocation -- any thread count, SIMD mode, or
///    chunk size -- agrees on shard identities. That is what lets shard
///    files from different machines and different runs merge.
///
///  * Every cell is content-fingerprinted (campaignCellFingerprint): a
///    digest of the cell coordinates plus the *implementation version* of
///    the transfer function it verifies (Oracle::opFingerprint over the
///    version tags in tnum/TnumOps.cpp and tnum/TnumMul.cpp). Shard files
///    carry their cell's fingerprint; on resume, shards whose fingerprint
///    still matches are served from the store and only invalidated cells
///    -- exactly the ones whose operator changed -- are GC'd and re-run.
///    Swapping one mul algorithm therefore re-verifies only the mul
///    cells, which is the paper's whole re-checking workflow (it was
///    written because the kernel's mul changed) made cheap.
///
///  * Shard results are normalized before they are recorded: a failing
///    shard stores the exact *serial-prefix* counters (what the serial
///    checker would have counted walking the shard's range and stopping
///    at the witness) instead of the parallel engine's scheduling-
///    dependent progress counters. Merging therefore reproduces the
///    serial checkers' reports bit-for-bit -- including the serial-order
///    first counterexample -- from ANY interleaving of shard
///    completions, partial resumes, multi-invocation splits, or
///    incremental re-runs.
///
///  * Optimality cells default to full scans (exact OptimalPairs totals,
///    matching checkOptimalityExhaustive with StopAtFirst = false). With
///    CampaignSpec::OptimalityEarlyExit the first witness-carrying shard
///    is terminal: later shards of that cell are skipped (and may stay
///    missing forever), and the merged report equals the serial
///    StopAtFirst = true report. Soundness and monotonicity cells are
///    always terminal-on-witness, mirroring their serial checkers.
///
/// Since the property-driver refactor every property IS a driver
/// (PropertyDriver below): a named, payload-versioned scan/merge pair
/// that runPropertyCampaign runs through the manifest / checkpoint /
/// merge / reuse machinery. The four built-in properties are drivers
/// inside runCampaign, and the Table I / Fig. 4 front ends plug their
/// custom order-independent reductions in as drivers of their own, which
/// is how every sweep front end shares one resume story AND one
/// payload-versioning story.
/// diffCampaignBaseline compares a finished run against an earlier
/// checkpoint directory -- the --diff-baseline report of which cells an
/// incremental resume would reuse, which it would re-run, and whether any
/// verdict changed. See docs/CAMPAIGN.md for the format and the
/// determinism contract.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_VERIFY_CAMPAIGN_H
#define TNUMS_VERIFY_CAMPAIGN_H

#include "support/Checkpoint.h"
#include "verify/ParallelSweep.h"

#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace tnums {

/// The properties a campaign can verify (or, for Precision, measure) per
/// cell.
enum class CampaignProperty : uint8_t {
  Soundness,
  Optimality,
  Monotonicity,
  /// Not a verdict but a measurement: the per-pair distance to the
  /// optimal abstraction (PrecisionReport's 65-bucket gap histogram plus
  /// the worst-case witness). holds() means "measured optimal
  /// everywhere"; front ends treat it as data, not a failure.
  Precision,
};

/// Stable lower-case name ("soundness", ...).
const char *campaignPropertyName(CampaignProperty Property);

/// The payload-format version of a built-in property's shard
/// serialization. Mixed into every cell fingerprint
/// (propertyCellFingerprint), so bumping it when a serialize*/parse*
/// pair changes format invalidates stored shards instead of merging
/// bytes they cannot parse -- the refusal-safety contract for stores
/// that outlive binaries.
unsigned campaignPropertyPayloadVersion(CampaignProperty Property);

/// One (operator, algorithm, width, property) cell of a campaign. Mul is
/// only meaningful for BinaryOp::Mul cells; keep it MulAlgorithm::Our
/// elsewhere so equal cells fingerprint equally.
struct CampaignCell {
  BinaryOp Op = BinaryOp::Add;
  MulAlgorithm Mul = MulAlgorithm::Our;
  unsigned Width = 4;
  CampaignProperty Property = CampaignProperty::Soundness;
};

/// A width-aware injectable transfer function: the cell's width is the
/// third argument, so one override can serve cells of several widths.
using OperatorOverrideFn =
    std::function<Tnum(const Tnum &, const Tnum &, unsigned)>;

/// A declarative campaign: which cells to verify and how optimality
/// cells terminate.
struct CampaignSpec {
  std::vector<CampaignCell> Cells;

  /// First-witness-only optimality (the ROADMAP's deterministic
  /// early-exit mode): an optimality shard that finds a witness is
  /// terminal for its cell, and the merged cell report equals the serial
  /// checker's StopAtFirst = true report.
  bool OptimalityEarlyExit = false;

  /// Injectable-operator hook: when set, the Soundness and Precision
  /// cells selected by OverrideOp / OverrideMul verify (or measure) this
  /// operator instead of applyAbstractBinary, so deliberately broken (or
  /// deliberately *changed*) transfer functions flow through the full
  /// shard/checkpoint/merge machinery. OverrideTag must then name the
  /// override -- it stands in for the (unhashable) function in the
  /// affected cells' content fingerprints, which is also how the
  /// incremental tests emulate "this operator's implementation changed":
  /// same spec shape, different cell fingerprint, so a resume
  /// invalidates and re-runs exactly the overridden cells (soundness
  /// re-verification AND precision re-measurement alike).
  OperatorOverrideFn OperatorOverride;
  std::string OverrideTag;

  /// Scope of OperatorOverride: unset applies it to every Soundness and
  /// Precision cell; OverrideOp restricts it to that operator's cells,
  /// and OverrideMul (meaningful with OverrideOp == Mul) to one named
  /// multiplication algorithm's.
  std::optional<BinaryOp> OverrideOp;
  std::optional<MulAlgorithm> OverrideMul;

  /// True when OperatorOverride replaces \p Cell's transfer function.
  bool overrideApplies(const CampaignCell &Cell) const;

  /// Appends the cross product of \p Properties over \p Widths for one
  /// (Op, Mul) -- the "algorithms x widths x properties" builder.
  void addGrid(BinaryOp Op, MulAlgorithm Mul,
               const std::vector<unsigned> &Widths,
               const std::vector<CampaignProperty> &Properties);
};

/// Sharding / checkpointing knobs, shared by every campaign front end.
struct CampaignIO {
  /// Directory for the durable shard store. Empty runs the campaign
  /// entirely in memory (no resume, single invocation).
  std::string CheckpointDir;

  /// Allow shards this invocation owns to be satisfied by files already
  /// in CheckpointDir. Off (the default) refuses a directory that
  /// already holds owned shards, so stale state is never reused by
  /// accident. Shards owned by OTHER invocations of a --shards split are
  /// always readable at merge time -- that is the farming mode's data
  /// path, not a resume. Incremental re-verification IS a resume: pass
  /// --resume after a transfer-function change and only the invalidated
  /// cells re-run.
  bool Resume = false;

  /// Split the manifest across \p Shards invocations; this invocation
  /// executes the shards with (manifest index % Shards) == ShardIndex.
  /// Requires a CheckpointDir when Shards > 1 (results meet on disk).
  unsigned Shards = 1;
  unsigned ShardIndex = 0;

  /// Pair indices per shard before the final short shard. The manifest
  /// -- and therefore the campaign fingerprint -- depends on this value
  /// and nothing else about scheduling, so a campaign may be resumed
  /// with a different thread count, chunk size, or SIMD mode.
  uint64_t ShardPairs = uint64_t(1) << 20;

  /// Stop executing after this many shards have been RUN this invocation
  /// (0 = unlimited). Time-boxes an invocation at a shard boundary; the
  /// kill-and-resume tests drive it to drop checkpoints mid-flight.
  uint64_t MaxShardsThisRun = 0;
};

/// One cell's merged outcome. Exactly the report field matching
/// Cell.Property is meaningful.
struct CampaignCellResult {
  CampaignCell Cell;
  SoundnessReport Soundness;
  OptimalityReport Optimality;
  MonotonicityReport Monotonicity;
  PrecisionReport Precision;

  /// All shards this cell needs were available and merged. (An early-exit
  /// optimality cell is complete at its terminal shard.)
  bool Complete = false;
  uint64_t ShardsTotal = 0;
  uint64_t ShardsMerged = 0;
  /// Executed-cell accounting: shards of THIS cell executed by this
  /// invocation, served from the store, found stale (op-fingerprint
  /// mismatch, GC'd and re-run), and skipped past an early-exit terminal
  /// shard. A cell with ShardsRun == 0 and ShardsResumed == ShardsMerged
  /// was reused wholesale; a cell with ShardsInvalidated > 0 is one an
  /// operator change forced back through the engine.
  uint64_t ShardsRun = 0;
  uint64_t ShardsResumed = 0;
  uint64_t ShardsInvalidated = 0;
  uint64_t ShardsSkipped = 0;
  /// Compute seconds summed over merged shards (informational: it is the
  /// one merged quantity that is NOT deterministic).
  double Seconds = 0;

  /// Property-specific "no counterexample" (meaningful when Complete).
  bool holds() const;
};

/// Outcome of one runCampaign invocation.
struct CampaignResult {
  /// Every cell merged to completion. False is normal for a partial
  /// --shards / MaxShardsThisRun invocation: the missing shards live in
  /// other invocations, and a later resume merges them.
  bool Complete = false;
  std::vector<CampaignCellResult> Cells; ///< 1:1 with CampaignSpec::Cells.

  uint64_t ShardsTotal = 0;   ///< Manifest size.
  uint64_t ShardsRun = 0;     ///< Executed by this invocation.
  uint64_t ShardsResumed = 0; ///< Owned shards satisfied from checkpoint.
  uint64_t ShardsSkipped = 0; ///< Skipped past a terminal (early-exit) shard.
  /// Owned shards whose stored cell fingerprint no longer matched the
  /// spec (the operator implementation changed): GC'd and re-run.
  uint64_t ShardsInvalidated = 0;

  /// Non-empty on hard failure (bad IO config, checkpoint mismatch, I/O
  /// error); Cells are then meaningless.
  std::string Error;

  bool ok() const { return Error.empty(); }
};

class ArgParser;

/// Consumes one of the shared campaign flags at \p Args' cursor into
/// \p IO -- --checkpoint-dir D, --resume, --shards K, --shard-index I,
/// --shard-pairs N, --max-shards N -- returning true when it did. The
/// one place the flag names and bounds live; every campaign front end
/// calls this once per parse-loop iteration like the other match*
/// helpers (support/ArgParse.h).
bool matchCampaignArgs(ArgParser &Args, CampaignIO &IO);

/// The usage-string fragment matching matchCampaignArgs, so the front
/// ends' help text cannot drift from the parser.
inline constexpr const char *CampaignArgsUsage =
    "[--checkpoint-dir D] [--resume] [--shards K] [--shard-index I] "
    "[--shard-pairs N] [--max-shards N]";

/// The spec SHAPE fingerprint guarding checkpoint directories: a digest
/// of the format version, every cell's coordinates, the early-exit mode,
/// and ShardPairs. Deliberately excluded: scheduling knobs (threads,
/// chunk size, SIMD mode, member table cap -- reports are bit-identical
/// across them) AND the operator implementation versions / override tag
/// -- those key individual CELLS (campaignCellFingerprint), not the
/// directory, so that a transfer-function change invalidates cells
/// instead of the whole store.
uint64_t campaignFingerprint(const CampaignSpec &Spec, const CampaignIO &IO);

/// The per-cell content fingerprint: cell coordinates plus the
/// implementation version of the transfer function the cell verifies
/// (opFingerprint, or Spec.OverrideTag where the override applies).
/// Stored in every shard file; a mismatch on resume means the operator
/// changed and the shard must be re-run.
uint64_t campaignCellFingerprint(const CampaignSpec &Spec,
                                 const CampaignCell &Cell);

/// Runs (its slice of) the campaign, checkpointing each completed shard,
/// then merges every available shard in manifest order.
CampaignResult runCampaign(const CampaignSpec &Spec, const CampaignIO &IO,
                           const SweepConfig &Config);

//===----------------------------------------------------------------------===//
// Baseline diffing -- the --diff-baseline report
//===----------------------------------------------------------------------===//

/// One cell of a diffCampaignBaseline report.
struct CampaignCellDiff {
  CampaignCell Cell;
  /// The baseline directory held at least one shard of this cell.
  bool InBaseline = false;
  /// The baseline's stored cell fingerprint (of its first present shard).
  uint64_t BaselineFingerprint = 0;
  /// The baseline fingerprint matches the current spec's: an incremental
  /// resume against this baseline would serve the cell from the store.
  bool Reused = false;
  /// Every shard the cell needs is present and fingerprint-consistent in
  /// the baseline, so a baseline verdict exists to compare against.
  bool BaselineComplete = false;
  /// The baseline's merged report for this cell (meaningful when
  /// BaselineComplete).
  CampaignCellResult Baseline;
  /// holds() flipped between the baseline merge and \p Current.
  bool VerdictChanged = false;
  /// Any merged counter or witness differs (a superset of VerdictChanged;
  /// e.g. an optimality cell may stay non-optimal with a different
  /// OptimalPairs count).
  bool ReportChanged = false;
};

/// Outcome of diffCampaignBaseline.
struct CampaignDiffResult {
  std::vector<CampaignCellDiff> Cells; ///< 1:1 with the spec's cells.
  uint64_t CellsReused = 0;
  uint64_t CellsRerun = 0; ///< In baseline but fingerprint-stale.
  uint64_t CellsVerdictChanged = 0;
  std::string Error;
  bool ok() const { return Error.empty(); }
};

/// Compares \p Current -- a completed runCampaign result for \p Spec /
/// \p IO -- against the shard store in \p BaselineDir written by an
/// earlier run of the same campaign SHAPE (same cells and ShardPairs;
/// anything else is a hard error). Reports, per cell, whether an
/// incremental resume would reuse or re-run it (op-fingerprint match)
/// and whether the merged verdict/report changed -- the workflow for
/// "the kernel swapped its mul algorithm; what did that change?".
CampaignDiffResult diffCampaignBaseline(const CampaignSpec &Spec,
                                        const CampaignIO &IO,
                                        const std::string &BaselineDir,
                                        const CampaignResult &Current);

/// Renders \p Diff's precision drift -- one line per Precision cell of
/// \p Spec whose merged measurement differs from the baseline's
/// ("precision delta <cell>: sum_gap A -> B, max_gap C -> D"), then the
/// "N precision deltas vs baseline" summary -- and returns the delta
/// count. Shared by every front end with a --diff-baseline flag so the
/// wording (and what counts as a delta: ReportChanged on a cell both
/// sides merged to completion) cannot drift between benches. Prints only
/// the summary when the spec has no Precision cells with a comparable
/// baseline verdict.
uint64_t printPrecisionDeltas(const CampaignSpec &Spec,
                              const CampaignDiffResult &Diff,
                              const CampaignResult &Current, std::FILE *Out);

//===----------------------------------------------------------------------===//
// Generic sharded reduction -- the raw driver under runPropertyCampaign.
// Payloads are opaque deterministic strings; prefer the PropertyDriver
// layer below, which adds payload-format versioning on top.
//===----------------------------------------------------------------------===//

/// Aggregate outcome of driveCampaignShards.
struct ShardDriveResult {
  bool Complete = false;
  uint64_t ShardsTotal = 0;
  uint64_t ShardsRun = 0;
  uint64_t ShardsResumed = 0;
  uint64_t ShardsSkipped = 0;
  uint64_t ShardsInvalidated = 0;
  std::string Error;

  bool ok() const { return Error.empty(); }
};

/// Per-cell shard accounting driveCampaignShards can report back.
struct CellShardCounts {
  uint64_t Run = 0;
  uint64_t Resumed = 0;
  uint64_t Invalidated = 0;
  uint64_t Skipped = 0;
};

/// Computes one shard: fill \p Out with the serialized, deterministic
/// result of pair range [\p Begin, \p End) of cell \p Cell. Set
/// Out.Terminal to end the cell at this shard (early exit). The driver
/// stamps Out.Cell / Out.CellFingerprint itself.
using RunShardFn = std::function<void(size_t Cell, uint64_t Begin,
                                      uint64_t End, ShardRecord &Out)>;

/// Folds one shard into the caller's accumulators. Called in manifest
/// order (cell-major, ranges ascending), never past a terminal shard.
/// Return false (after setting \p Error) on a malformed payload.
using MergeShardFn =
    std::function<bool(size_t Cell, uint64_t Begin, uint64_t End,
                       const ShardRecord &Record, std::string &Error)>;

/// Prints the one-line shard-progress banner every campaign front end
/// emits ("campaign: N shards total, ..."), so the wording cannot drift
/// between benches. The skipped and invalidated counts only appear when
/// nonzero (skips need an early-exit property campaign; invalidations
/// need an operator change since the checkpoint was written).
void printCampaignStatus(uint64_t ShardsTotal, uint64_t ShardsRun,
                         uint64_t ShardsResumed, uint64_t ShardsSkipped,
                         uint64_t ShardsInvalidated,
                         const std::string &CheckpointDir);

/// Shards each cell's [0, CellTotalPairs[c]) range per \p IO, executes
/// this invocation's slice via \p Run (persisting to IO.CheckpointDir when
/// set), then merges every available shard in manifest order via
/// \p Merge. \p CellFingerprints (1:1 with CellTotalPairs) are the cells'
/// content fingerprints: stored shards are served only while theirs still
/// matches; stale owned shards are GC'd and re-executed. \p CellComplete
/// (optional, resized to the cell count) reports which cells merged to
/// completion; \p CellCounts (optional) the per-cell execution accounting.
ShardDriveResult driveCampaignShards(
    const std::vector<uint64_t> &CellTotalPairs,
    const std::vector<uint64_t> &CellFingerprints, uint64_t Fingerprint,
    const CampaignIO &IO, const RunShardFn &Run, const MergeShardFn &Merge,
    std::vector<bool> *CellComplete = nullptr,
    std::vector<CellShardCounts> *CellCounts = nullptr);

//===----------------------------------------------------------------------===//
// Property drivers -- the extensible registry under runCampaign. A
// property is a driver: scan a shard range into payload bytes, merge
// payloads order-independently, version the payload format. The four
// built-in properties are expressed through it inside runCampaign, and
// front ends whose per-pair work is not one of them (the Table I /
// Fig. 4 walks) plug their own drivers into runPropertyCampaign instead
// of hand-rolling serialization over driveCampaignShards.
//===----------------------------------------------------------------------===//

/// One campaign property as the engine sees it. A driver owns its
/// payload format end to end: runShard serializes a deterministic BODY,
/// mergeShard folds bodies back in manifest order, and payloadVersion
/// names the format. The engine wraps every body in a
/// "payload <name> <version>" header line: the header is verified and
/// stripped before mergeShard ever sees the bytes, so a store whose
/// payload format predates the binary is refused with a migration
/// message instead of being misparsed -- defense in depth behind the
/// fingerprint-level invalidation that a payloadVersion bump triggers.
class PropertyDriver {
public:
  virtual ~PropertyDriver() = default;

  /// Stable lower-case property name; stamped into every payload header
  /// and mixed into every cell fingerprint.
  virtual const char *name() const = 0;

  /// Payload-format version; bump on ANY serialization change so stored
  /// shards invalidate instead of misparse.
  virtual unsigned payloadVersion() const = 0;

  /// Scans pair range [\p Begin, \p End) of cell \p Cell into a
  /// deterministic payload body. Set \p Terminal to end the cell at this
  /// shard (early exit); later shards of the cell are then skipped.
  virtual void runShard(size_t Cell, uint64_t Begin, uint64_t End,
                        std::string &Payload, bool &Terminal) = 0;

  /// Folds one payload body into the driver's accumulators. Called in
  /// manifest order (cell-major, ranges ascending), never past a
  /// terminal shard. Return false (with \p Error set) on a malformed
  /// body; the merge fold must be order-independent across shard
  /// *producers* (any invocation may have written any shard).
  virtual bool mergeShard(size_t Cell, uint64_t Begin, uint64_t End,
                          const std::string &Payload,
                          std::string &Error) = 0;
};

/// One cell of a property campaign: a pair-range size, the content
/// fingerprint of whatever implementation the cell measures (operator
/// version tags, override tag, front-end format tag...), and the driver
/// that scans and merges it. The engine derives the cell's stored
/// fingerprint from all three (propertyCellFingerprint), so a change to
/// the implementation OR the payload format invalidates stored shards.
struct PropertyCampaignCell {
  uint64_t TotalPairs = 0;
  uint64_t ContentFingerprint = 0;
  PropertyDriver *Driver = nullptr;
};

/// The fingerprint actually stored in a property campaign's shard files:
/// the cell's content fingerprint extended by the driver's property name
/// and payload-format version. This is what makes stores refusal-safe
/// across format changes -- bumping a driver's payloadVersion changes
/// every one of its cells' fingerprints, so resumes invalidate and
/// re-run them instead of parsing bytes written by an older format.
uint64_t propertyCellFingerprint(uint64_t ContentFingerprint,
                                 const char *PropertyName,
                                 unsigned PayloadVersion);

/// Drives a property campaign: shards each cell per \p IO, executes this
/// invocation's slice through the cells' drivers (stamping the payload
/// header), and merges every available shard in manifest order through
/// the drivers' mergeShard (verifying and stripping the header first).
/// \p Fingerprint guards the store directory as in driveCampaignShards;
/// \p CellComplete / \p CellCounts as there. This is the one entry point
/// every payload-carrying front end shares -- runCampaign's four
/// built-in properties and the Table I / Fig. 4 reductions run through
/// the same code path.
ShardDriveResult
runPropertyCampaign(const std::vector<PropertyCampaignCell> &Cells,
                    uint64_t Fingerprint, const CampaignIO &IO,
                    std::vector<bool> *CellComplete = nullptr,
                    std::vector<CellShardCounts> *CellCounts = nullptr);

} // namespace tnums

#endif // TNUMS_VERIFY_CAMPAIGN_H
