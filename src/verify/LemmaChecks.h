//===- verify/LemmaChecks.h - Executable paper lemmas -----------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper proves tnum_add/tnum_sub sound and optimal through a chain of
/// lemmas about the carry (resp. borrow) sequences of concrete additions
/// drawn from the operand tnums (§III-B, supplementary §VII). This header
/// encodes each lemma as an executable predicate so the test suite can
/// validate the proof structure itself at bounded width -- the offline
/// stand-in for the paper's "paper-and-pen proofs checked by spot tests".
///
/// Carry/borrow extraction uses the full-adder identity r = p ^ q ^ cin
/// (Definition 1): the carry-in sequence of p + q is p ^ q ^ (p + q), and
/// the borrow-in sequence of p - q is p ^ q ^ (p - q).
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_VERIFY_LEMMACHECKS_H
#define TNUMS_VERIFY_LEMMACHECKS_H

#include "tnum/Tnum.h"

#include <optional>
#include <string>

namespace tnums {

/// The sequence of carry-in bits of the addition \p A + \p B: bit k is the
/// carry into position k (so bit 0 is always 0).
inline uint64_t carryInSequence(uint64_t A, uint64_t B) {
  return A ^ B ^ (A + B);
}

/// The sequence of borrow-in bits of the subtraction \p A - \p B.
inline uint64_t borrowInSequence(uint64_t A, uint64_t B) {
  return A ^ B ^ (A - B);
}

/// Lemma 2 (minimum carries): the carry sequence of P.v + Q.v is a bitwise
/// lower bound of the carry sequence of every concrete p + q. Checks all
/// member pairs within \p Width; requires small concretizations.
bool checkMinCarriesLemma(Tnum P, Tnum Q, unsigned Width);

/// Lemma 3 (maximum carries): the carry sequence of
/// (P.v + P.m) + (Q.v + Q.m) is a bitwise upper bound of every concrete
/// carry sequence.
bool checkMaxCarriesLemma(Tnum P, Tnum Q, unsigned Width);

/// Lemma 4 (capture uncertainty): positions where the min and max carry
/// sequences agree are fixed across all concrete additions; positions where
/// they differ are realized both ways by some concrete additions.
bool checkCaptureUncertaintyLemma(Tnum P, Tnum Q, unsigned Width);

/// Lemma 5 (mask-expression equivalence):
/// (sv ^ Sigma) | P.m | Q.m == (svc ^ Sigmac) | P.m | Q.m. Pure bit
/// identity, no member enumeration.
bool checkMaskEquivalenceLemma(Tnum P, Tnum Q);

/// Lemma 24 (minimum borrows): the borrow sequence of (P.v + P.m) - Q.v
/// bitwise lower-bounds every concrete borrow sequence of p - q.
bool checkMinBorrowsLemma(Tnum P, Tnum Q, unsigned Width);

/// Lemma 25 (maximum borrows): the borrow sequence of P.v - (Q.v + Q.m)
/// bitwise upper-bounds every concrete borrow sequence.
bool checkMaxBorrowsLemma(Tnum P, Tnum Q, unsigned Width);

/// Lemma 8 (tnum set union with zero): for Q = (0, P.v | P.m),
/// gamma(P) ⊆ gamma(Q) and 0 ∈ gamma(Q).
bool checkSetUnionWithZeroLemma(Tnum P);

/// Property P0 (value-mask decomposition of a single tnum): every
/// x ∈ gamma(T) decomposes as T.v + x'' with x'' ∈ gamma((0, T.m)).
bool checkValueMaskDecomposition(Tnum T, unsigned Width);

/// Sweeps one lemma over every well-formed tnum pair at \p Width and
/// returns a description of the first violation, or std::nullopt if the
/// lemma holds everywhere. \p Lemma selects by name:
/// "min-carries", "max-carries", "capture-uncertainty", "mask-equivalence",
/// "min-borrows", "max-borrows", "set-union-zero", "value-mask-decomp".
std::optional<std::string> sweepLemmaExhaustive(const std::string &Lemma,
                                                unsigned Width);

/// Names accepted by sweepLemmaExhaustive, null-terminated.
extern const char *const AllLemmaNames[];

} // namespace tnums

#endif // TNUMS_VERIFY_LEMMACHECKS_H
