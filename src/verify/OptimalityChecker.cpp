//===- verify/OptimalityChecker.cpp - Optimality/precision checks ---------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "verify/OptimalityChecker.h"

#include "support/Table.h"
#include "tnum/TnumEnum.h"
#include "tnum/TnumMembers.h"

#include <algorithm>

using namespace tnums;

Tnum tnums::optimalAbstractBinary(BinaryOp Op, Tnum P, Tnum Q,
                                  unsigned Width) {
  assert(P.isWellFormed() && Q.isWellFormed() && "optimal abstraction of ⊥");
  Tnum Acc = Tnum::makeBottom();
  forEachMember(P, [&](uint64_t X) {
    forEachMember(Q, [&](uint64_t Y) {
      Acc = abstractInsert(Acc, applyConcreteBinary(Op, X, Y, Width));
    });
  });
  return Acc;
}

Tnum tnums::optimalAbstractBinaryBatched(BinaryOp Op, unsigned Width,
                                         const Tnum &P, const uint64_t *Ys,
                                         uint64_t NumYs,
                                         const SimdKernels &Kernels) {
  assert(P.isWellFormed() && "optimal abstraction of ⊥");
  assert(NumYs != 0 && "gamma(Q) of a well-formed tnum is never empty");
  // alpha over a non-empty set C is (AND of C, AND xor OR) (Eqn. 5);
  // folding constants through joinWith computes exactly these two
  // reductions, so accumulating them directly is the batched equivalent.
  uint64_t AndAcc = ~uint64_t(0);
  uint64_t OrAcc = 0;
  alignas(SimdBatchAlign) uint64_t Zs[SimdBatchLanes];
  forEachMember(P, [&](uint64_t X) {
    for (uint64_t Base = 0; Base < NumYs; Base += SimdBatchLanes) {
      unsigned N = static_cast<unsigned>(
          std::min<uint64_t>(SimdBatchLanes, NumYs - Base));
      applyConcreteBinaryBatch(Op, X, Ys + Base, Zs, N, Width);
      Kernels.ReduceAndOr(Zs, N, &AndAcc, &OrAcc);
    }
  });
  return Tnum(AndAcc, AndAcc ^ OrAcc);
}

Tnum tnums::optimalAbstractBinaryMembers(BinaryOp Op, unsigned Width,
                                         const uint64_t *Xs, uint64_t NumXs,
                                         const uint64_t *Ys, uint64_t NumYs,
                                         const SimdKernels &Kernels) {
  assert(NumXs != 0 && NumYs != 0 &&
         "gamma of a well-formed tnum is never empty");
  // Same two reductions as optimalAbstractBinaryBatched, but with both
  // concretizations memoized as flat lists the batch can run over EITHER
  // operand -- the AND/OR fold is order-independent, so batching over the
  // longer axis (instead of always gamma(Q)) keeps the 64-lane kernels
  // full even when the other concretization is tiny. |gamma| is 2^k, so
  // one axis always divides evenly into full batches whenever it has
  // >= 64 members. Bit-identical to the scalar fold for every input.
  uint64_t AndAcc = ~uint64_t(0);
  uint64_t OrAcc = 0;
  alignas(SimdBatchAlign) uint64_t Zs[SimdBatchLanes];
  if (NumXs > NumYs) {
    for (uint64_t YI = 0; YI != NumYs; ++YI) {
      uint64_t Y = Ys[YI];
      for (uint64_t Base = 0; Base < NumXs; Base += SimdBatchLanes) {
        unsigned N = static_cast<unsigned>(
            std::min<uint64_t>(SimdBatchLanes, NumXs - Base));
        applyConcreteBinaryBatchLhs(Op, Xs + Base, Y, Zs, N, Width);
        Kernels.ReduceAndOr(Zs, N, &AndAcc, &OrAcc);
      }
    }
  } else {
    for (uint64_t XI = 0; XI != NumXs; ++XI) {
      uint64_t X = Xs[XI];
      for (uint64_t Base = 0; Base < NumYs; Base += SimdBatchLanes) {
        unsigned N = static_cast<unsigned>(
            std::min<uint64_t>(SimdBatchLanes, NumYs - Base));
        applyConcreteBinaryBatch(Op, X, Ys + Base, Zs, N, Width);
        Kernels.ReduceAndOr(Zs, N, &AndAcc, &OrAcc);
      }
    }
  }
  return Tnum(AndAcc, AndAcc ^ OrAcc);
}

std::string OptimalityCounterexample::toString(unsigned Width) const {
  return formatString("P=%s Q=%s actual=%s optimal=%s",
                      P.toString(Width).c_str(), Q.toString(Width).c_str(),
                      Actual.toString(Width).c_str(),
                      Optimal.toString(Width).c_str());
}

OptimalityReport tnums::checkOptimalityExhaustive(BinaryOp Op, unsigned Width,
                                                  MulAlgorithm Mul,
                                                  bool StopAtFirst,
                                                  SimdMode Simd) {
  assert((!isShiftOp(Op) || (Width & (Width - 1)) == 0) &&
         "shift verification requires a power-of-two width");
  OptimalityReport Report;
  std::vector<Tnum> Universe = allWellFormedTnums(Width);
  const bool Batched = simdModeBatches(Simd);
  const SimdKernels &Kernels = selectSimdKernels(Simd);
  std::vector<uint64_t> Xs;
  std::vector<uint64_t> Ys;
  for (const Tnum &P : Universe) {
    // gamma(P) is staged once per row and reused across the whole Q axis
    // (the memoized-concretization restructuring; order and results are
    // bit-identical to the per-pair enumeration it replaced).
    if (Batched)
      materializeMembers(P, Xs);
    for (const Tnum &Q : Universe) {
      ++Report.PairsChecked;
      Tnum Actual = applyAbstractBinary(Op, P, Q, Width, Mul);
      Tnum Optimal;
      if (Batched) {
        materializeMembers(Q, Ys);
        Optimal = optimalAbstractBinaryMembers(Op, Width, Xs.data(),
                                               Xs.size(), Ys.data(),
                                               Ys.size(), Kernels);
      } else {
        Optimal = optimalAbstractBinary(Op, P, Q, Width);
      }
      if (Actual == Optimal) {
        ++Report.OptimalPairs;
        continue;
      }
      if (!Report.Failure)
        Report.Failure = OptimalityCounterexample{P, Q, Actual, Optimal};
      if (StopAtFirst)
        return Report;
    }
  }
  return Report;
}
