//===- verify/OptimalityChecker.cpp - Optimality/precision checks ---------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "verify/OptimalityChecker.h"

#include "support/Table.h"
#include "tnum/TnumEnum.h"

using namespace tnums;

Tnum tnums::optimalAbstractBinary(BinaryOp Op, Tnum P, Tnum Q,
                                  unsigned Width) {
  assert(P.isWellFormed() && Q.isWellFormed() && "optimal abstraction of ⊥");
  Tnum Acc = Tnum::makeBottom();
  forEachMember(P, [&](uint64_t X) {
    forEachMember(Q, [&](uint64_t Y) {
      Acc = abstractInsert(Acc, applyConcreteBinary(Op, X, Y, Width));
    });
  });
  return Acc;
}

std::string OptimalityCounterexample::toString(unsigned Width) const {
  return formatString("P=%s Q=%s actual=%s optimal=%s",
                      P.toString(Width).c_str(), Q.toString(Width).c_str(),
                      Actual.toString(Width).c_str(),
                      Optimal.toString(Width).c_str());
}

OptimalityReport tnums::checkOptimalityExhaustive(BinaryOp Op, unsigned Width,
                                                  MulAlgorithm Mul,
                                                  bool StopAtFirst) {
  assert((!isShiftOp(Op) || (Width & (Width - 1)) == 0) &&
         "shift verification requires a power-of-two width");
  OptimalityReport Report;
  std::vector<Tnum> Universe = allWellFormedTnums(Width);
  for (const Tnum &P : Universe) {
    for (const Tnum &Q : Universe) {
      ++Report.PairsChecked;
      Tnum Actual = applyAbstractBinary(Op, P, Q, Width, Mul);
      Tnum Optimal = optimalAbstractBinary(Op, P, Q, Width);
      if (Actual == Optimal) {
        ++Report.OptimalPairs;
        continue;
      }
      if (!Report.Failure)
        Report.Failure = OptimalityCounterexample{P, Q, Actual, Optimal};
      if (StopAtFirst)
        return Report;
    }
  }
  return Report;
}
