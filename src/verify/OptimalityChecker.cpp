//===- verify/OptimalityChecker.cpp - Optimality/precision checks ---------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "verify/OptimalityChecker.h"

#include "support/Table.h"
#include "tnum/TnumEnum.h"
#include "tnum/TnumMembers.h"

#include <algorithm>
#include <bit>

#if TNUMS_SIMD_HAVE_X86_KERNELS
#include <immintrin.h>
#endif
#if TNUMS_SIMD_HAVE_NEON_KERNELS
#include <arm_neon.h>
#endif

using namespace tnums;

//===----------------------------------------------------------------------===//
// Fused evaluate-and-reduce (the optimality alpha-reduce)
//
// The two-pass path materializes each batch of concrete results into a
// stack buffer (applyConcreteBinaryBatch / ...Lhs) and then runs
// Kernels.ReduceAndOr over it, paying a store + reload per member pair.
// For the fused-eligible operators (hasFusedSimdKernel) the evaluation
// and the two alpha reductions (Eqn. 5) run in ONE register loop: the
// AND/OR accumulators ride in vector registers through the eval loop and
// the concrete outputs never touch memory. This mirrors the fused
// soundness scans in SoundnessChecker.cpp.
//
// One loop serves both batching axes: the commutative ops do not care
// which operand is splat, and Sub -- the only fused non-commutative op --
// just flips its operand order on BatchLhs. Both reductions are exact
// order-independent bitwise folds, so fused and two-pass results are
// bit-identical by construction, for every tier.
//===----------------------------------------------------------------------===//

namespace {

/// Scalar evaluation of one fused-eligible op with the batch operand in
/// \p B and the fixed operand in \p F; \p BatchLhs says which side the
/// batch is on (only Sub cares). Tail step shared by every tier.
inline uint64_t fusedEval(BinaryOp Op, bool BatchLhs, uint64_t F, uint64_t B,
                          uint64_t WMask) {
  switch (Op) {
  case BinaryOp::Add:
    return (F + B) & WMask;
  case BinaryOp::Sub:
    return (BatchLhs ? B - F : F - B) & WMask;
  case BinaryOp::Mul:
    return (F * B) & WMask;
  case BinaryOp::And:
    return F & B;
  case BinaryOp::Or:
    return F | B;
  case BinaryOp::Xor:
    return F ^ B;
  default:
    assert(false && "op has no fused reduce tail");
    return 0;
  }
}

/// Portable fused loop: same store-elimination idea without hand
/// vectorization (the per-op bodies are simple enough to auto-vectorize).
void fusedReduceScalar(BinaryOp Op, bool BatchLhs, uint64_t Fixed,
                       const uint64_t *Batch, unsigned N, uint64_t WMask,
                       uint64_t *AndAcc, uint64_t *OrAcc) {
  uint64_t A = *AndAcc;
  uint64_t O = *OrAcc;
  switch (Op) {
  case BinaryOp::Add:
    for (unsigned I = 0; I != N; ++I) {
      uint64_t Z = (Fixed + Batch[I]) & WMask;
      A &= Z;
      O |= Z;
    }
    break;
  case BinaryOp::Sub:
    if (BatchLhs) {
      for (unsigned I = 0; I != N; ++I) {
        uint64_t Z = (Batch[I] - Fixed) & WMask;
        A &= Z;
        O |= Z;
      }
    } else {
      for (unsigned I = 0; I != N; ++I) {
        uint64_t Z = (Fixed - Batch[I]) & WMask;
        A &= Z;
        O |= Z;
      }
    }
    break;
  case BinaryOp::Mul:
    for (unsigned I = 0; I != N; ++I) {
      uint64_t Z = (Fixed * Batch[I]) & WMask;
      A &= Z;
      O |= Z;
    }
    break;
  case BinaryOp::And:
    for (unsigned I = 0; I != N; ++I) {
      uint64_t Z = Fixed & Batch[I];
      A &= Z;
      O |= Z;
    }
    break;
  case BinaryOp::Or:
    for (unsigned I = 0; I != N; ++I) {
      uint64_t Z = Fixed | Batch[I];
      A &= Z;
      O |= Z;
    }
    break;
  case BinaryOp::Xor:
    for (unsigned I = 0; I != N; ++I) {
      uint64_t Z = Fixed ^ Batch[I];
      A &= Z;
      O |= Z;
    }
    break;
  default:
    assert(false && "op has no fused reduce loop");
  }
  *AndAcc = A;
  *OrAcc = O;
}

#if TNUMS_SIMD_HAVE_X86_KERNELS

__attribute__((target("avx2"))) void
fusedReduceAvx2(BinaryOp Op, bool BatchLhs, uint64_t Fixed,
                const uint64_t *Batch, unsigned N, uint64_t WMask,
                uint64_t *AndAcc, uint64_t *OrAcc) {
  const __m256i Fv = _mm256_set1_epi64x(static_cast<long long>(Fixed));
  const __m256i WMaskv = _mm256_set1_epi64x(static_cast<long long>(WMask));
  __m256i A = _mm256_set1_epi64x(-1);
  __m256i O = _mm256_setzero_si256();
  unsigned I = 0;
  switch (Op) {
  case BinaryOp::Add:
    for (; I + 4 <= N; I += 4) {
      __m256i B =
          _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Batch + I));
      __m256i Z = _mm256_and_si256(_mm256_add_epi64(Fv, B), WMaskv);
      A = _mm256_and_si256(A, Z);
      O = _mm256_or_si256(O, Z);
    }
    break;
  case BinaryOp::Sub:
    for (; I + 4 <= N; I += 4) {
      __m256i B =
          _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Batch + I));
      __m256i Z = BatchLhs ? _mm256_sub_epi64(B, Fv) : _mm256_sub_epi64(Fv, B);
      Z = _mm256_and_si256(Z, WMaskv);
      A = _mm256_and_si256(A, Z);
      O = _mm256_or_si256(O, Z);
    }
    break;
  case BinaryOp::Mul:
    // Width <= 16 lanes: the 8x32-bit low multiply is exact (odd 32-bit
    // elements multiply 0 * 0), as in the fused soundness loop.
    for (; I + 4 <= N; I += 4) {
      __m256i B =
          _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Batch + I));
      __m256i Z = _mm256_and_si256(_mm256_mullo_epi32(Fv, B), WMaskv);
      A = _mm256_and_si256(A, Z);
      O = _mm256_or_si256(O, Z);
    }
    break;
  case BinaryOp::And:
    for (; I + 4 <= N; I += 4) {
      __m256i B =
          _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Batch + I));
      __m256i Z = _mm256_and_si256(Fv, B);
      A = _mm256_and_si256(A, Z);
      O = _mm256_or_si256(O, Z);
    }
    break;
  case BinaryOp::Or:
    for (; I + 4 <= N; I += 4) {
      __m256i B =
          _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Batch + I));
      __m256i Z = _mm256_or_si256(Fv, B);
      A = _mm256_and_si256(A, Z);
      O = _mm256_or_si256(O, Z);
    }
    break;
  case BinaryOp::Xor:
    for (; I + 4 <= N; I += 4) {
      __m256i B =
          _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Batch + I));
      __m256i Z = _mm256_xor_si256(Fv, B);
      A = _mm256_and_si256(A, Z);
      O = _mm256_or_si256(O, Z);
    }
    break;
  default:
    assert(false && "op has no fused reduce loop");
  }
  alignas(SimdBatchAlign) uint64_t ATmp[4];
  alignas(SimdBatchAlign) uint64_t OTmp[4];
  _mm256_store_si256(reinterpret_cast<__m256i *>(ATmp), A);
  _mm256_store_si256(reinterpret_cast<__m256i *>(OTmp), O);
  uint64_t AFold = ATmp[0] & ATmp[1] & ATmp[2] & ATmp[3];
  uint64_t OFold = OTmp[0] | OTmp[1] | OTmp[2] | OTmp[3];
  for (; I != N; ++I) {
    uint64_t Z = fusedEval(Op, BatchLhs, Fixed, Batch[I], WMask);
    AFold &= Z;
    OFold |= Z;
  }
  *AndAcc &= AFold;
  *OrAcc |= OFold;
}

/// Horizontal AND/OR of the eight qword lanes, spelled out with one
/// store and a scalar fold instead of _mm512_reduce_*_epi64: GCC 12's
/// header implementation trips -Wuninitialized (via
/// _mm256_undefined_si256) under -Werror.
__attribute__((target("avx512f,avx512bw"), always_inline)) inline uint64_t
horizontalAnd512(__m512i A) {
  alignas(64) uint64_t Tmp[8];
  _mm512_store_si512(Tmp, A);
  return Tmp[0] & Tmp[1] & Tmp[2] & Tmp[3] & Tmp[4] & Tmp[5] & Tmp[6] &
         Tmp[7];
}

__attribute__((target("avx512f,avx512bw"), always_inline)) inline uint64_t
horizontalOr512(__m512i O) {
  alignas(64) uint64_t Tmp[8];
  _mm512_store_si512(Tmp, O);
  return Tmp[0] | Tmp[1] | Tmp[2] | Tmp[3] | Tmp[4] | Tmp[5] | Tmp[6] |
         Tmp[7];
}

__attribute__((target("avx512f,avx512bw"))) void
fusedReduceAvx512(BinaryOp Op, bool BatchLhs, uint64_t Fixed,
                  const uint64_t *Batch, unsigned N, uint64_t WMask,
                  uint64_t *AndAcc, uint64_t *OrAcc) {
  const __m512i Fv = _mm512_set1_epi64(static_cast<long long>(Fixed));
  const __m512i WMaskv = _mm512_set1_epi64(static_cast<long long>(WMask));
  __m512i A = _mm512_set1_epi64(-1);
  __m512i O = _mm512_setzero_si512();
  unsigned I = 0;
  switch (Op) {
  case BinaryOp::Add:
    for (; I + 8 <= N; I += 8) {
      __m512i B = _mm512_loadu_si512(Batch + I);
      __m512i Z = _mm512_and_si512(_mm512_add_epi64(Fv, B), WMaskv);
      A = _mm512_and_si512(A, Z);
      O = _mm512_or_si512(O, Z);
    }
    break;
  case BinaryOp::Sub:
    for (; I + 8 <= N; I += 8) {
      __m512i B = _mm512_loadu_si512(Batch + I);
      __m512i Z = BatchLhs ? _mm512_sub_epi64(B, Fv) : _mm512_sub_epi64(Fv, B);
      Z = _mm512_and_si512(Z, WMaskv);
      A = _mm512_and_si512(A, Z);
      O = _mm512_or_si512(O, Z);
    }
    break;
  case BinaryOp::Mul:
    for (; I + 8 <= N; I += 8) {
      __m512i B = _mm512_loadu_si512(Batch + I);
      __m512i Z = _mm512_and_si512(_mm512_mullo_epi32(Fv, B), WMaskv);
      A = _mm512_and_si512(A, Z);
      O = _mm512_or_si512(O, Z);
    }
    break;
  case BinaryOp::And:
    for (; I + 8 <= N; I += 8) {
      __m512i B = _mm512_loadu_si512(Batch + I);
      __m512i Z = _mm512_and_si512(Fv, B);
      A = _mm512_and_si512(A, Z);
      O = _mm512_or_si512(O, Z);
    }
    break;
  case BinaryOp::Or:
    for (; I + 8 <= N; I += 8) {
      __m512i B = _mm512_loadu_si512(Batch + I);
      __m512i Z = _mm512_or_si512(Fv, B);
      A = _mm512_and_si512(A, Z);
      O = _mm512_or_si512(O, Z);
    }
    break;
  case BinaryOp::Xor:
    for (; I + 8 <= N; I += 8) {
      __m512i B = _mm512_loadu_si512(Batch + I);
      __m512i Z = _mm512_xor_si512(Fv, B);
      A = _mm512_and_si512(A, Z);
      O = _mm512_or_si512(O, Z);
    }
    break;
  default:
    assert(false && "op has no fused reduce loop");
  }
  uint64_t AFold = horizontalAnd512(A);
  uint64_t OFold = horizontalOr512(O);
  for (; I != N; ++I) {
    uint64_t Z = fusedEval(Op, BatchLhs, Fixed, Batch[I], WMask);
    AFold &= Z;
    OFold |= Z;
  }
  *AndAcc &= AFold;
  *OrAcc |= OFold;
}

#endif // TNUMS_SIMD_HAVE_X86_KERNELS

#if TNUMS_SIMD_HAVE_NEON_KERNELS

void fusedReduceNeon(BinaryOp Op, bool BatchLhs, uint64_t Fixed,
                     const uint64_t *Batch, unsigned N, uint64_t WMask,
                     uint64_t *AndAcc, uint64_t *OrAcc) {
  const uint64x2_t Fv = vdupq_n_u64(Fixed);
  const uint64x2_t WMaskv = vdupq_n_u64(WMask);
  uint64x2_t A = vdupq_n_u64(~uint64_t(0));
  uint64x2_t O = vdupq_n_u64(0);
  unsigned I = 0;
  switch (Op) {
  case BinaryOp::Add:
    for (; I + 2 <= N; I += 2) {
      uint64x2_t B = vld1q_u64(Batch + I);
      uint64x2_t Z = vandq_u64(vaddq_u64(Fv, B), WMaskv);
      A = vandq_u64(A, Z);
      O = vorrq_u64(O, Z);
    }
    break;
  case BinaryOp::Sub:
    for (; I + 2 <= N; I += 2) {
      uint64x2_t B = vld1q_u64(Batch + I);
      uint64x2_t Z = BatchLhs ? vsubq_u64(B, Fv) : vsubq_u64(Fv, B);
      Z = vandq_u64(Z, WMaskv);
      A = vandq_u64(A, Z);
      O = vorrq_u64(O, Z);
    }
    break;
  case BinaryOp::Mul:
    // Width <= 16: 32-bit lane multiply of the low halves is exact.
    for (; I + 2 <= N; I += 2) {
      uint64x2_t B = vld1q_u64(Batch + I);
      uint32x4_t Prod =
          vmulq_u32(vreinterpretq_u32_u64(Fv), vreinterpretq_u32_u64(B));
      uint64x2_t Z = vandq_u64(vreinterpretq_u64_u32(Prod), WMaskv);
      A = vandq_u64(A, Z);
      O = vorrq_u64(O, Z);
    }
    break;
  case BinaryOp::And:
    for (; I + 2 <= N; I += 2) {
      uint64x2_t B = vld1q_u64(Batch + I);
      uint64x2_t Z = vandq_u64(Fv, B);
      A = vandq_u64(A, Z);
      O = vorrq_u64(O, Z);
    }
    break;
  case BinaryOp::Or:
    for (; I + 2 <= N; I += 2) {
      uint64x2_t B = vld1q_u64(Batch + I);
      uint64x2_t Z = vorrq_u64(Fv, B);
      A = vandq_u64(A, Z);
      O = vorrq_u64(O, Z);
    }
    break;
  case BinaryOp::Xor:
    for (; I + 2 <= N; I += 2) {
      uint64x2_t B = vld1q_u64(Batch + I);
      uint64x2_t Z = veorq_u64(Fv, B);
      A = vandq_u64(A, Z);
      O = vorrq_u64(O, Z);
    }
    break;
  default:
    assert(false && "op has no fused reduce loop");
  }
  uint64_t AFold = vgetq_lane_u64(A, 0) & vgetq_lane_u64(A, 1);
  uint64_t OFold = vgetq_lane_u64(O, 0) | vgetq_lane_u64(O, 1);
  for (; I != N; ++I) {
    uint64_t Z = fusedEval(Op, BatchLhs, Fixed, Batch[I], WMask);
    AFold &= Z;
    OFold |= Z;
  }
  *AndAcc &= AFold;
  *OrAcc |= OFold;
}

#endif // TNUMS_SIMD_HAVE_NEON_KERNELS

/// Dispatches one fused reduce call to \p Tier's loop. Every tier is
/// bit-identical; the portable loop is the reference.
void fusedReduceAndOr(SimdTier Tier, BinaryOp Op, bool BatchLhs,
                      uint64_t Fixed, const uint64_t *Batch, unsigned N,
                      uint64_t WMask, uint64_t *AndAcc, uint64_t *OrAcc) {
  switch (Tier) {
#if TNUMS_SIMD_HAVE_X86_KERNELS
  case SimdTier::Avx2:
    fusedReduceAvx2(Op, BatchLhs, Fixed, Batch, N, WMask, AndAcc, OrAcc);
    return;
  case SimdTier::Avx512:
    fusedReduceAvx512(Op, BatchLhs, Fixed, Batch, N, WMask, AndAcc, OrAcc);
    return;
#endif
#if TNUMS_SIMD_HAVE_NEON_KERNELS
  case SimdTier::Neon:
    fusedReduceNeon(Op, BatchLhs, Fixed, Batch, N, WMask, AndAcc, OrAcc);
    return;
#endif
  default:
    fusedReduceScalar(Op, BatchLhs, Fixed, Batch, N, WMask, AndAcc, OrAcc);
    return;
  }
}

} // namespace

Tnum tnums::optimalAbstractBinary(BinaryOp Op, Tnum P, Tnum Q,
                                  unsigned Width) {
  assert(P.isWellFormed() && Q.isWellFormed() && "optimal abstraction of ⊥");
  Tnum Acc = Tnum::makeBottom();
  forEachMember(P, [&](uint64_t X) {
    forEachMember(Q, [&](uint64_t Y) {
      Acc = abstractInsert(Acc, applyConcreteBinary(Op, X, Y, Width));
    });
  });
  return Acc;
}

Tnum tnums::optimalAbstractBinaryBatched(BinaryOp Op, unsigned Width,
                                         const Tnum &P, const uint64_t *Ys,
                                         uint64_t NumYs,
                                         const SimdKernels &Kernels,
                                         bool AllowFused) {
  assert(P.isWellFormed() && "optimal abstraction of ⊥");
  assert(NumYs != 0 && "gamma(Q) of a well-formed tnum is never empty");
  // alpha over a non-empty set C is (AND of C, AND xor OR) (Eqn. 5);
  // folding constants through joinWith computes exactly these two
  // reductions, so accumulating them directly is the batched equivalent.
  uint64_t AndAcc = ~uint64_t(0);
  uint64_t OrAcc = 0;
  const bool Fused = AllowFused && hasFusedSimdKernel(Op, Width);
  const uint64_t WMask = lowBitsMask(Width);
  alignas(SimdBatchAlign) uint64_t Zs[SimdBatchLanes];
  forEachMember(P, [&](uint64_t X) {
    for (uint64_t Base = 0; Base < NumYs; Base += SimdBatchLanes) {
      unsigned N = static_cast<unsigned>(
          std::min<uint64_t>(SimdBatchLanes, NumYs - Base));
      if (Fused) {
        fusedReduceAndOr(Kernels.Tier, Op, /*BatchLhs=*/false, X, Ys + Base,
                         N, WMask, &AndAcc, &OrAcc);
      } else {
        applyConcreteBinaryBatch(Op, X, Ys + Base, Zs, N, Width);
        Kernels.ReduceAndOr(Zs, N, &AndAcc, &OrAcc);
      }
    }
  });
  return Tnum(AndAcc, AndAcc ^ OrAcc);
}

Tnum tnums::optimalAbstractBinaryMembers(BinaryOp Op, unsigned Width,
                                         const uint64_t *Xs, uint64_t NumXs,
                                         const uint64_t *Ys, uint64_t NumYs,
                                         const SimdKernels &Kernels,
                                         bool AllowFused) {
  assert(NumXs != 0 && NumYs != 0 &&
         "gamma of a well-formed tnum is never empty");
  // Same two reductions as optimalAbstractBinaryBatched, but with both
  // concretizations memoized as flat lists the batch can run over EITHER
  // operand -- the AND/OR fold is order-independent, so batching over the
  // longer axis (instead of always gamma(Q)) keeps the 64-lane kernels
  // full even when the other concretization is tiny. |gamma| is 2^k, so
  // one axis always divides evenly into full batches whenever it has
  // >= 64 members. Bit-identical to the scalar fold for every input.
  uint64_t AndAcc = ~uint64_t(0);
  uint64_t OrAcc = 0;
  const bool Fused = AllowFused && hasFusedSimdKernel(Op, Width);
  const uint64_t WMask = lowBitsMask(Width);
  alignas(SimdBatchAlign) uint64_t Zs[SimdBatchLanes];
  if (NumXs > NumYs) {
    for (uint64_t YI = 0; YI != NumYs; ++YI) {
      uint64_t Y = Ys[YI];
      for (uint64_t Base = 0; Base < NumXs; Base += SimdBatchLanes) {
        unsigned N = static_cast<unsigned>(
            std::min<uint64_t>(SimdBatchLanes, NumXs - Base));
        if (Fused) {
          fusedReduceAndOr(Kernels.Tier, Op, /*BatchLhs=*/true, Y, Xs + Base,
                           N, WMask, &AndAcc, &OrAcc);
        } else {
          applyConcreteBinaryBatchLhs(Op, Xs + Base, Y, Zs, N, Width);
          Kernels.ReduceAndOr(Zs, N, &AndAcc, &OrAcc);
        }
      }
    }
  } else {
    for (uint64_t XI = 0; XI != NumXs; ++XI) {
      uint64_t X = Xs[XI];
      for (uint64_t Base = 0; Base < NumYs; Base += SimdBatchLanes) {
        unsigned N = static_cast<unsigned>(
            std::min<uint64_t>(SimdBatchLanes, NumYs - Base));
        if (Fused) {
          fusedReduceAndOr(Kernels.Tier, Op, /*BatchLhs=*/false, X, Ys + Base,
                           N, WMask, &AndAcc, &OrAcc);
        } else {
          applyConcreteBinaryBatch(Op, X, Ys + Base, Zs, N, Width);
          Kernels.ReduceAndOr(Zs, N, &AndAcc, &OrAcc);
        }
      }
    }
  }
  return Tnum(AndAcc, AndAcc ^ OrAcc);
}

std::string OptimalityCounterexample::toString(unsigned Width) const {
  return formatString("P=%s Q=%s actual=%s optimal=%s",
                      P.toString(Width).c_str(), Q.toString(Width).c_str(),
                      Actual.toString(Width).c_str(),
                      Optimal.toString(Width).c_str());
}

std::string PrecisionWitness::toString(unsigned Width) const {
  return formatString("P=%s Q=%s actual=%s optimal=%s gap=%u",
                      P.toString(Width).c_str(), Q.toString(Width).c_str(),
                      Actual.toString(Width).c_str(),
                      Optimal.toString(Width).c_str(), Gap);
}

PrecisionReport tnums::measurePrecisionGap(BinaryOp Op, unsigned Width,
                                           MulAlgorithm Mul, SimdMode Simd) {
  assert((!isShiftOp(Op) || (Width & (Width - 1)) == 0) &&
         "shift verification requires a power-of-two width");
  PrecisionReport Report;
  std::vector<Tnum> Universe = allWellFormedTnums(Width);
  const bool Batched = simdModeBatches(Simd);
  const SimdKernels &Kernels = selectSimdKernels(Simd);
  std::vector<uint64_t> Xs;
  std::vector<uint64_t> Ys;
  for (const Tnum &P : Universe) {
    if (Batched)
      materializeMembers(P, Xs);
    for (const Tnum &Q : Universe) {
      ++Report.PairsChecked;
      Tnum Actual = applyAbstractBinary(Op, P, Q, Width, Mul);
      Tnum Optimal;
      if (Batched) {
        materializeMembers(Q, Ys);
        Optimal = optimalAbstractBinaryMembers(Op, Width, Xs.data(),
                                               Xs.size(), Ys.data(),
                                               Ys.size(), Kernels);
      } else {
        Optimal = optimalAbstractBinary(Op, P, Q, Width);
      }
      // Sound => gamma(Optimal) subseteq gamma(Actual) => the optimal mask
      // is a submask of the actual mask, so the difference is >= 0; the
      // clamp only fires for deliberately broken (unsound) operators.
      int Gap = std::popcount(Actual.mask()) - std::popcount(Optimal.mask());
      unsigned G = Gap > 0 ? static_cast<unsigned>(Gap) : 0;
      Report.SumGap += G;
      ++Report.Buckets[G];
      if (G > Report.MaxGap) {
        Report.MaxGap = G;
        Report.Worst = PrecisionWitness{P, Q, Actual, Optimal, G};
      }
    }
  }
  return Report;
}

OptimalityReport tnums::checkOptimalityExhaustive(BinaryOp Op, unsigned Width,
                                                  MulAlgorithm Mul,
                                                  bool StopAtFirst,
                                                  SimdMode Simd) {
  assert((!isShiftOp(Op) || (Width & (Width - 1)) == 0) &&
         "shift verification requires a power-of-two width");
  OptimalityReport Report;
  std::vector<Tnum> Universe = allWellFormedTnums(Width);
  const bool Batched = simdModeBatches(Simd);
  const SimdKernels &Kernels = selectSimdKernels(Simd);
  std::vector<uint64_t> Xs;
  std::vector<uint64_t> Ys;
  for (const Tnum &P : Universe) {
    // gamma(P) is staged once per row and reused across the whole Q axis
    // (the memoized-concretization restructuring; order and results are
    // bit-identical to the per-pair enumeration it replaced).
    if (Batched)
      materializeMembers(P, Xs);
    for (const Tnum &Q : Universe) {
      ++Report.PairsChecked;
      Tnum Actual = applyAbstractBinary(Op, P, Q, Width, Mul);
      Tnum Optimal;
      if (Batched) {
        materializeMembers(Q, Ys);
        Optimal = optimalAbstractBinaryMembers(Op, Width, Xs.data(),
                                               Xs.size(), Ys.data(),
                                               Ys.size(), Kernels);
      } else {
        Optimal = optimalAbstractBinary(Op, P, Q, Width);
      }
      if (Actual == Optimal) {
        ++Report.OptimalPairs;
        continue;
      }
      if (!Report.Failure)
        Report.Failure = OptimalityCounterexample{P, Q, Actual, Optimal};
      if (StopAtFirst)
        return Report;
    }
  }
  return Report;
}
