//===- verify/Oracle.h - Concrete/abstract operator pairs -------*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pairs every abstract tnum operator with the width-n concrete BPF
/// operation it abstracts, so the soundness/optimality checkers can state
/// the paper's verification condition (Eqn. 11) uniformly:
///
///   forall wf P, Q, forall x in gamma(P), y in gamma(Q):
///     opC(x, y) in gamma(opT(P, Q))
///
/// The concrete semantics follow the BPF instruction set the paper targets:
/// wrap-around arithmetic at the width, x / 0 == 0, x % 0 == x, and shift
/// amounts masked to Width - 1 (power-of-two widths).
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_VERIFY_ORACLE_H
#define TNUMS_VERIFY_ORACLE_H

#include "tnum/Tnum.h"
#include "tnum/TnumMul.h"

namespace tnums {

/// The binary operations the BPF analyzer needs abstract operators for
/// (§II-B list, minus the unary neg which is Sub(0, x)).
enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  And,
  Or,
  Xor,
  Lsh,
  Rsh,
  Arsh,
};

/// All BinaryOp enumerators, for sweeping harnesses.
inline constexpr BinaryOp AllBinaryOps[] = {
    BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul, BinaryOp::Div,
    BinaryOp::Mod, BinaryOp::And, BinaryOp::Or,  BinaryOp::Xor,
    BinaryOp::Lsh, BinaryOp::Rsh, BinaryOp::Arsh};

/// Stable lower-case name ("add", "arsh", ...).
const char *binaryOpName(BinaryOp Op);

/// True for Lsh/Rsh/Arsh, whose checkers require a power-of-two width
/// (shift amounts are masked to Width - 1).
bool isShiftOp(BinaryOp Op);

/// True when (\p Op, \p Width) has fused evaluate-and-test /
/// evaluate-and-reduce SIMD loops in verify/ (the soundness scan and the
/// optimality alpha-reduce): the wrap-around and bitwise operators always,
/// Mul only while the vector lanes' 32x32 low multiply is exact
/// (Width <= 16). Everything else takes the two-pass batch path through
/// applyConcreteBinaryBatch* + the SimdBatch kernels.
bool hasFusedSimdKernel(BinaryOp Op, unsigned Width);

/// The width-\p Width concrete semantics of \p Op applied to the low
/// \p Width bits of \p X and \p Y. Result fits the width.
uint64_t applyConcreteBinary(BinaryOp Op, uint64_t X, uint64_t Y,
                             unsigned Width);

/// Batch form of applyConcreteBinary for the SIMD membership sweeps:
/// Zs[j] = opC(X, Ys[j]) at \p Width for j in [0, N). Semantically
/// identical to N scalar calls, but the operator dispatch is hoisted out
/// of the loop and each per-op loop body is simple enough for the
/// compiler to pipeline or vectorize. \p Zs must not alias \p Ys.
void applyConcreteBinaryBatch(BinaryOp Op, uint64_t X, const uint64_t *Ys,
                              uint64_t *Zs, unsigned N, unsigned Width);

/// Mirror of applyConcreteBinaryBatch with the batch on the LEFT operand:
/// Zs[j] = opC(Xs[j], Y) at \p Width for j in [0, N). The optimality
/// reduction is an order-independent AND/OR fold over all (x, y) pairs,
/// so it may batch over whichever concretization is longer; the
/// non-commutative operators (sub, div, mod, shifts) need this spelled
/// out rather than a swapped call. \p Zs must not alias \p Xs.
void applyConcreteBinaryBatchLhs(BinaryOp Op, const uint64_t *Xs, uint64_t Y,
                                 uint64_t *Zs, unsigned N, unsigned Width);

/// The abstract transfer function for \p Op, truncated to \p Width.
/// Multiplication is computed with \p Mul so that every algorithm variant
/// can be pushed through the same verification pipeline.
Tnum applyAbstractBinary(BinaryOp Op, Tnum P, Tnum Q, unsigned Width,
                         MulAlgorithm Mul = MulAlgorithm::Our);

/// Content fingerprint of the transfer-function implementation that
/// applyAbstractBinary dispatches (\p Op, \p Mul) to: a digest of the
/// operator's version tag (tnumOpVersions / mulAlgorithmVersion, bumped
/// whenever the algorithm changes). \p Mul only participates for
/// BinaryOp::Mul -- all other operators fingerprint identically for every
/// Mul value, mirroring applyAbstractBinary's dispatch. The campaign
/// layer keys checkpointed cells on this digest so that changing one
/// transfer function invalidates exactly the cells that verified it.
uint64_t opFingerprint(BinaryOp Op, MulAlgorithm Mul = MulAlgorithm::Our);

} // namespace tnums

#endif // TNUMS_VERIFY_ORACLE_H
