//===- verify/MonotonicityChecker.cpp - Operator monotonicity -------------===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "verify/MonotonicityChecker.h"

#include "support/Table.h"
#include "tnum/TnumEnum.h"

using namespace tnums;

std::string MonotonicityCounterexample::toString(unsigned Width) const {
  return formatString(
      "P1=%s ⊑ P2=%s, Q1=%s ⊑ Q2=%s, but op(P1,Q1)=%s ⋢ op(P2,Q2)=%s",
      P1.toString(Width).c_str(), P2.toString(Width).c_str(),
      Q1.toString(Width).c_str(), Q2.toString(Width).c_str(),
      R1.toString(Width).c_str(), R2.toString(Width).c_str());
}

MonotonicityReport tnums::checkMonotonicityExhaustive(BinaryOp Op,
                                                      unsigned Width,
                                                      MulAlgorithm Mul) {
  assert((!isShiftOp(Op) || (Width & (Width - 1)) == 0) &&
         "shift verification requires a power-of-two width");
  MonotonicityReport Report;
  std::vector<Tnum> Universe = allWellFormedTnums(Width);
  for (const Tnum &P2 : Universe) {
    for (const Tnum &Q2 : Universe) {
      Tnum R2 = applyAbstractBinary(Op, P2, Q2, Width, Mul);
      bool Stop = false;
      forEachSubTnum(P2, [&](Tnum P1) {
        if (Stop)
          return;
        forEachSubTnum(Q2, [&](Tnum Q1) {
          if (Stop)
            return;
          ++Report.QuadruplesChecked;
          Tnum R1 = applyAbstractBinary(Op, P1, Q1, Width, Mul);
          if (!R1.isSubsetOf(R2)) {
            Report.Failure =
                MonotonicityCounterexample{P1, Q1, P2, Q2, R1, R2};
            Stop = true;
          }
        });
      });
      if (Stop)
        return Report;
    }
  }
  return Report;
}
