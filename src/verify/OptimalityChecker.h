//===- verify/OptimalityChecker.h - Optimality/precision checks -*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks whether an abstract operator equals the *optimal* abstraction
/// alpha ∘ f ∘ gamma (the maximally precise sound operator, §II-A). The
/// paper proves tnum_add/tnum_sub optimal (Theorems 6/22) and notes every
/// multiplication algorithm is non-optimal; these checkers confirm both
/// facts exhaustively at bounded width and quantify *how far* from optimal
/// an operator is (used by the precision experiments).
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_VERIFY_OPTIMALITYCHECKER_H
#define TNUMS_VERIFY_OPTIMALITYCHECKER_H

#include "support/SimdBatch.h"
#include "verify/Oracle.h"

#include <optional>
#include <string>

namespace tnums {

/// The optimal abstraction alpha(opC(gamma(P), gamma(Q))) at \p Width,
/// computed by brute-force enumeration of both concretizations. This is
/// the yardstick every operator is measured against; cost is
/// |gamma(P)| * |gamma(Q)| concrete evaluations.
Tnum optimalAbstractBinary(BinaryOp Op, Tnum P, Tnum Q, unsigned Width);

/// Batched form of optimalAbstractBinary, shared by the serial and
/// parallel optimality sweeps. \p Ys must be gamma(Q) materialized in
/// subset-odometer order (tnum/TnumMembers.h) with NumYs >= 1, and
/// \p Kernels a backend from support/SimdBatch.h. Instead of folding each
/// concrete output through abstractInsert, the two reductions of alpha
/// (Eqn. 5) -- AND of all outputs and OR of all outputs -- run over whole
/// batches; alpha(C) = (AND, AND xor OR) falls out at the end. When
/// \p AllowFused and (Op, Width) has fused kernels
/// (hasFusedSimdKernel), the concrete evaluation and the AND/OR
/// accumulation run in one register loop with no intermediate result
/// buffer -- the fused optimality alpha-reduce. Both reductions are exact
/// order-independent bitwise folds, so every path (scalar fold, two-pass
/// batch, fused, any kernel tier) is bit-identical for every input.
Tnum optimalAbstractBinaryBatched(BinaryOp Op, unsigned Width, const Tnum &P,
                                  const uint64_t *Ys, uint64_t NumYs,
                                  const SimdKernels &Kernels,
                                  bool AllowFused = true);

/// Fully-memoized form: BOTH concretizations arrive as flat member lists
/// in subset-odometer order (gamma(P) in \p Xs, gamma(Q) in \p Ys), so
/// nothing is re-enumerated per (P, Q) pair. This is what lets the
/// optimality sweeps hoist a per-P member list across the whole Q axis --
/// from the per-universe MemberTable when it fits the byte cap, or staged
/// once per P row otherwise -- instead of walking the subset odometer of
/// gamma(P) again for every pair. \p AllowFused as in
/// optimalAbstractBinaryBatched (the fused loops batch over whichever
/// axis is longer, like the two-pass path). Bit-identical to the scalar
/// fold and to optimalAbstractBinaryBatched for every input.
Tnum optimalAbstractBinaryMembers(BinaryOp Op, unsigned Width,
                                  const uint64_t *Xs, uint64_t NumXs,
                                  const uint64_t *Ys, uint64_t NumYs,
                                  const SimdKernels &Kernels,
                                  bool AllowFused = true);

/// Witness that an operator is not optimal on some input pair: the
/// operator's result R strictly over-approximates the optimal result.
struct OptimalityCounterexample {
  Tnum P;
  Tnum Q;
  Tnum Actual;
  Tnum Optimal;

  std::string toString(unsigned Width) const;
};

/// Outcome of an exhaustive optimality check.
struct OptimalityReport {
  uint64_t PairsChecked = 0;
  /// Pairs where the operator matched the optimal abstraction exactly.
  uint64_t OptimalPairs = 0;
  /// First pair (if any) where it did not.
  std::optional<OptimalityCounterexample> Failure;

  bool isOptimalEverywhere() const { return !Failure.has_value(); }
};

/// Exhaustively compares \p Op against the optimal abstraction at \p Width.
/// Stops at the first non-optimal pair if \p StopAtFirst, else keeps
/// counting OptimalPairs (and retains the first counterexample). \p Simd
/// selects the member-scan path; every mode produces a bit-identical
/// report (SimdMode::Off is the scalar reference the differential tests
/// pin the batched kernels against).
OptimalityReport
checkOptimalityExhaustive(BinaryOp Op, unsigned Width,
                          MulAlgorithm Mul = MulAlgorithm::Our,
                          bool StopAtFirst = true,
                          SimdMode Simd = SimdMode::Auto);

//===----------------------------------------------------------------------===//
// Precision-gap measurement -- the optimality scan generalized from a
// boolean verdict into a per-pair distance-to-optimal metric.
//===----------------------------------------------------------------------===//

/// The (P, Q) pair with the worst measured precision gap: the operator's
/// result carries Gap more unknown bits than the optimal abstraction.
struct PrecisionWitness {
  Tnum P;
  Tnum Q;
  Tnum Actual;
  Tnum Optimal;
  unsigned Gap = 0;

  std::string toString(unsigned Width) const;
};

/// One bucket per possible gap value (a tnum can lose at most 64 bits).
constexpr unsigned PrecisionGapBuckets = 65;

/// Outcome of an exhaustive precision-gap measurement. Per (P, Q) pair the
/// gap is popcount(mu(actual)) - popcount(mu(optimal)) -- how many bits of
/// knowledge the transfer function gave up relative to alpha ∘ f ∘ gamma
/// -- clamped at zero (a sound operator's optimal result is a subset of
/// its actual result, so the clamp only fires for deliberately broken
/// overrides). Gap 0 means the pair is handled optimally; the full
/// distribution lands in Buckets (Buckets[g] counts pairs with gap
/// exactly g), which is what the precision-atlas CDFs render.
struct PrecisionReport {
  uint64_t PairsChecked = 0;
  /// Sum of all gaps: SumGap / PairsChecked is the mean lost bits.
  uint64_t SumGap = 0;
  /// Largest gap observed (0 when the operator is optimal everywhere).
  unsigned MaxGap = 0;
  /// Buckets[g] = number of pairs with gap exactly g.
  uint64_t Buckets[PrecisionGapBuckets] = {};
  /// The serial-order first pair attaining MaxGap; present iff MaxGap > 0.
  std::optional<PrecisionWitness> Worst;

  uint64_t optimalPairs() const { return Buckets[0]; }
  double meanGap() const {
    return PairsChecked ? double(SumGap) / double(PairsChecked) : 0.0;
  }
};

/// Exhaustively measures \p Op's precision gap against the optimal
/// abstraction at \p Width -- the serial reference the parallel sweep
/// (checkPrecisionRangeParallel) and the campaign merges are bit-identical
/// to. Always a full scan (a measurement has no early exit). \p Simd as in
/// checkOptimalityExhaustive; every mode reports identically.
PrecisionReport measurePrecisionGap(BinaryOp Op, unsigned Width,
                                    MulAlgorithm Mul = MulAlgorithm::Our,
                                    SimdMode Simd = SimdMode::Auto);

} // namespace tnums

#endif // TNUMS_VERIFY_OPTIMALITYCHECKER_H
