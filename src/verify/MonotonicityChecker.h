//===- verify/MonotonicityChecker.h - Operator monotonicity -----*- C++ -*-===//
//
// Part of the tnums project, reproducing "Sound, Precise, and Fast Abstract
// Interpretation with Tristate Numbers" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks monotonicity of abstract operators: P1 ⊑ P2 and Q1 ⊑ Q2 must
/// imply op(P1, Q1) ⊑ op(P2, Q2). Optimal operators (alpha ∘ f ∘ gamma)
/// are monotone by construction, so tnum_add/tnum_sub and the bitwise ops
/// should pass; the paper leaves the question open for the multiplication
/// algorithms, and this checker answers it empirically per bounded width
/// (an extension experiment beyond the paper -- see EXPERIMENTS.md).
///
/// Monotonicity matters operationally: a non-monotone transfer function
/// can make a fixpoint iteration oscillate or lose precision when inputs
/// are refined.
///
//===----------------------------------------------------------------------===//

#ifndef TNUMS_VERIFY_MONOTONICITYCHECKER_H
#define TNUMS_VERIFY_MONOTONICITYCHECKER_H

#include "verify/Oracle.h"

#include <optional>
#include <string>

namespace tnums {

/// Witness of a monotonicity violation: refined inputs (P1 ⊑ P2, Q1 ⊑ Q2)
/// whose output is not refined.
struct MonotonicityCounterexample {
  Tnum P1;
  Tnum Q1;
  Tnum P2;
  Tnum Q2;
  Tnum R1; ///< op(P1, Q1)
  Tnum R2; ///< op(P2, Q2)

  std::string toString(unsigned Width) const;
};

/// Outcome of a monotonicity sweep.
struct MonotonicityReport {
  uint64_t QuadruplesChecked = 0;
  std::optional<MonotonicityCounterexample> Failure;

  bool holds() const { return !Failure.has_value(); }
};

/// Exhaustively checks monotonicity of \p Op at \p Width by enumerating
/// every (P2, Q2) pair and every sub-tnum refinement (P1 ⊑ P2, Q1 ⊑ Q2).
/// Cost is 25^Width quadruples (each side contributes sum over tnums of
/// its down-set size, 5^Width); keep Width <= 5.
MonotonicityReport
checkMonotonicityExhaustive(BinaryOp Op, unsigned Width,
                            MulAlgorithm Mul = MulAlgorithm::Our);

} // namespace tnums

#endif // TNUMS_VERIFY_MONOTONICITYCHECKER_H
